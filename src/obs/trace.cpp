#include "obs/trace.hpp"

#include <chrono>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "util/logging.hpp"

namespace fedguard::obs {

namespace {

// Installed session + a monotonically increasing epoch. Thread-local buffer
// caches are keyed by epoch, not pointer, so a recycled heap address can
// never resurrect a stale cache entry (classic ABA).
std::atomic<TraceSession*> g_session{nullptr};
std::atomic<std::uint64_t> g_epoch_source{0};

// Process-wide trace context, one relaxed atomic per field (see the header
// note on why tearing across fields is benign here).
std::atomic<std::uint64_t> g_ctx_trace_id{0};
std::atomic<std::uint64_t> g_ctx_parent_span{0};
std::atomic<std::uint64_t> g_ctx_round{0};

void append_hex16(std::string& out, std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += digits[(value >> shift) & 0xF];
  }
}

void json_escape_into(std::string& out, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

thread_local std::uint64_t TraceSession::t_buffer_epoch = 0;
thread_local TraceSession::ThreadBuffer* TraceSession::t_buffer = nullptr;

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_trace_context(const TraceContext& context) noexcept {
  g_ctx_trace_id.store(context.trace_id, std::memory_order_relaxed);
  g_ctx_parent_span.store(context.parent_span, std::memory_order_relaxed);
  g_ctx_round.store(context.round, std::memory_order_relaxed);
}

void clear_trace_context() noexcept { set_trace_context(TraceContext{}); }

TraceContext current_trace_context() noexcept {
  TraceContext context;
  context.trace_id = g_ctx_trace_id.load(std::memory_order_relaxed);
  context.parent_span = g_ctx_parent_span.load(std::memory_order_relaxed);
  context.round = g_ctx_round.load(std::memory_order_relaxed);
  return context;
}

std::uint64_t make_trace_id(std::uint64_t seed, std::uint64_t round) noexcept {
  // splitmix64 finalizer over the mixed pair; forced nonzero because 0 is the
  // "no context" sentinel.
  std::uint64_t x =
      seed ^ ((round + 1) * 0x9E3779B97F4A7C15ULL);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

TraceSession::TraceSession(std::string path, std::size_t events_per_thread)
    : path_{std::move(path)},
      events_per_thread_{events_per_thread < 4 ? 4 : events_per_thread},
      epoch_{g_epoch_source.fetch_add(1, std::memory_order_relaxed) + 1},
      start_ns_{now_ns()} {
  TraceSession* expected = nullptr;
  installed_ =
      g_session.compare_exchange_strong(expected, this, std::memory_order_release,
                                        std::memory_order_relaxed);
  if (!installed_) {
    util::log_warn(
        "obs: a TraceSession is already active; '%s' will record nothing",
        path_.c_str());
  }
}

TraceSession::~TraceSession() {
  if (installed_) {
    // Uninstall first so no new span can pick this session up, then drain.
    // Callers must have quiesced instrumented threads (see header contract).
    g_session.store(nullptr, std::memory_order_release);
  }
  try {
    flush();
  } catch (const std::exception& e) {
    util::log_warn("obs: final trace flush failed: %s", e.what());
  }
}

bool TraceSession::active() noexcept {
  return g_session.load(std::memory_order_acquire) != nullptr;
}

TraceSession::ThreadBuffer* TraceSession::buffer_for_current_thread() {
  if (t_buffer_epoch == epoch_ && t_buffer != nullptr) return t_buffer;
  auto buffer = std::make_unique<ThreadBuffer>();
  ThreadBuffer* raw = buffer.get();
  {
    const util::MutexLock lock{buffers_mutex_};
    // The buffer is not yet published, but tid/events are guarded by its own
    // mutex; taking it here is uncontended and keeps the annotations exact.
    const util::MutexLock buffer_lock{raw->mutex};
    raw->events.reserve(events_per_thread_);
    raw->tid = static_cast<int>(buffers_.size());
    buffers_.push_back(std::move(buffer));
  }
  t_buffer = raw;
  t_buffer_epoch = epoch_;
  return raw;
}

std::uint64_t TraceSession::dropped_spans() const noexcept {
  std::uint64_t dropped = 0;
  const util::MutexLock lock{buffers_mutex_};
  for (const auto& buffer : buffers_) {
    const util::MutexLock buffer_lock{buffer->mutex};
    dropped += buffer->dropped;
  }
  return dropped;
}

void TraceSession::flush() {
  // flush_mutex_ serializes whole flushes (concurrent callers would otherwise
  // interleave on flushed_ and the output file) and is released only after
  // the file is rewritten. Lock order: flush -> buffers -> per-thread buffer.
  const util::MutexLock flush_lock{flush_mutex_};
  drain_buffers_locked();
  write_file();
}

void TraceSession::drain_buffers_locked() {
  const util::MutexLock lock{buffers_mutex_};
  for (const auto& buffer : buffers_) {
    const util::MutexLock buffer_lock{buffer->mutex};
    for (Event& event : buffer->events) {
      event.tid = buffer->tid;
      flushed_.push_back(std::move(event));
    }
    buffer->events.clear();
  }
}

std::vector<TraceEventRecord> TraceSession::take_events() {
  const util::MutexLock flush_lock{flush_mutex_};
  drain_buffers_locked();
  std::vector<TraceEventRecord> out;
  out.reserve(flushed_.size());
  for (Event& event : flushed_) {
    TraceEventRecord record;
    record.name = std::move(event.name);
    record.category = std::move(event.category);
    record.ts_ns = event.ts_ns;
    record.trace_id = event.trace_id;
    record.round = event.round;
    record.pid = event.pid == 0 ? pid_ : event.pid;
    record.tid = event.tid;
    record.phase = event.phase;
    out.push_back(std::move(record));
  }
  flushed_.clear();
  return out;
}

void TraceSession::ingest(std::span<const TraceEventRecord> events) {
  const util::MutexLock flush_lock{flush_mutex_};
  for (const TraceEventRecord& record : events) {
    Event event;
    event.name = record.name;
    event.category = record.category;
    event.ts_ns = record.ts_ns;
    event.trace_id = record.trace_id;
    event.round = record.round;
    event.phase = record.phase;
    event.pid = record.pid == 0 ? pid_ : record.pid;
    event.tid = record.tid;
    flushed_.push_back(std::move(event));
  }
}

void TraceSession::write_file() {
  if (path_.empty()) return;  // relay-only session: take_events is the output
  std::ofstream file{path_, std::ios::trunc};
  if (!file) throw std::runtime_error{"obs: cannot write trace file " + path_};
  // One event object per line so tests (and grep) can parse the file without
  // a JSON library. Timestamps are microseconds relative to session start,
  // with sub-µs kept as a fraction so close-together spans stay ordered.
  file << "{\"traceEvents\":[\n";
  std::string line;
  for (std::size_t i = 0; i < flushed_.size(); ++i) {
    const Event& event = flushed_[i];
    // Ingested foreign events are rebased by the caller and can land a hair
    // before session start; clamp instead of wrapping the unsigned delta.
    const std::uint64_t rel_ns =
        event.ts_ns < start_ns_ ? 0 : event.ts_ns - start_ns_;
    line.clear();
    line += "{\"name\":\"";
    json_escape_into(line, event.name);
    line += "\",\"cat\":\"";
    json_escape_into(line, event.category);
    line += "\",\"ph\":\"";
    line += event.phase;
    line += "\",\"ts\":";
    line += std::to_string(rel_ns / 1000);
    line += '.';
    const std::uint64_t frac = rel_ns % 1000;
    line += static_cast<char>('0' + frac / 100);
    line += static_cast<char>('0' + frac / 10 % 10);
    line += static_cast<char>('0' + frac % 10);
    line += ",\"pid\":";
    line += std::to_string(event.pid == 0 ? pid_ : event.pid);
    line += ",\"tid\":";
    line += std::to_string(event.tid);
    if (event.trace_id != 0) {
      // Correlation args: same trace_id across root / shard / client lanes
      // groups one round's spans (hex so Perfetto shows it verbatim).
      line += ",\"args\":{\"trace_id\":\"";
      append_hex16(line, event.trace_id);
      line += "\",\"round\":";
      line += std::to_string(event.round);
      line += "}";
    }
    line += "}";
    if (i + 1 < flushed_.size()) line += ',';
    line += '\n';
    file << line;
  }
  file << "]}\n";
}

bool ingest_into_active_session(std::span<const TraceEventRecord> events) {
  TraceSession* session = g_session.load(std::memory_order_acquire);
  if (session == nullptr) return false;
  session->ingest(events);
  return true;
}

Span::Span(std::string category, std::string name) {
  TraceSession* session = g_session.load(std::memory_order_acquire);
  if (session == nullptr) return;
  TraceSession::ThreadBuffer* buffer = session->buffer_for_current_thread();
  const util::MutexLock lock{buffer->mutex};
  // Reserve this span's E slot up front: a B is only recorded when both its
  // own slot and the eventual E slot fit, so the trace can never hold an
  // unmatched B from overflow.
  if (buffer->events.size() + buffer->open_spans + 2 >
      buffer->events.capacity()) {
    ++buffer->dropped;
    return;
  }
  TraceSession::Event event;
  event.name = name;
  event.category = category;
  event.ts_ns = now_ns();
  event.trace_id = g_ctx_trace_id.load(std::memory_order_relaxed);
  event.round = g_ctx_round.load(std::memory_order_relaxed);
  event.phase = 'B';
  buffer->events.push_back(std::move(event));
  ++buffer->open_spans;
  buffer_ = buffer;
  category_ = std::move(category);
  name_ = std::move(name);
}

Span::~Span() {
  if (buffer_ == nullptr) return;
  const util::MutexLock lock{buffer_->mutex};
  TraceSession::Event event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.ts_ns = now_ns();
  event.trace_id = g_ctx_trace_id.load(std::memory_order_relaxed);
  event.round = g_ctx_round.load(std::memory_order_relaxed);
  event.phase = 'E';
  buffer_->events.push_back(std::move(event));
  --buffer_->open_spans;
}

}  // namespace fedguard::obs
