#include "obs/trace.hpp"

#include <chrono>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "util/logging.hpp"

namespace fedguard::obs {

namespace {

// Installed session + a monotonically increasing epoch. Thread-local buffer
// caches are keyed by epoch, not pointer, so a recycled heap address can
// never resurrect a stale cache entry (classic ABA).
std::atomic<TraceSession*> g_session{nullptr};
std::atomic<std::uint64_t> g_epoch_source{0};

void json_escape_into(std::string& out, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

thread_local std::uint64_t TraceSession::t_buffer_epoch = 0;
thread_local TraceSession::ThreadBuffer* TraceSession::t_buffer = nullptr;

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceSession::TraceSession(std::string path, std::size_t events_per_thread)
    : path_{std::move(path)},
      events_per_thread_{events_per_thread < 4 ? 4 : events_per_thread},
      epoch_{g_epoch_source.fetch_add(1, std::memory_order_relaxed) + 1},
      start_ns_{now_ns()} {
  TraceSession* expected = nullptr;
  installed_ =
      g_session.compare_exchange_strong(expected, this, std::memory_order_release,
                                        std::memory_order_relaxed);
  if (!installed_) {
    util::log_warn(
        "obs: a TraceSession is already active; '%s' will record nothing",
        path_.c_str());
  }
}

TraceSession::~TraceSession() {
  if (installed_) {
    // Uninstall first so no new span can pick this session up, then drain.
    // Callers must have quiesced instrumented threads (see header contract).
    g_session.store(nullptr, std::memory_order_release);
  }
  try {
    flush();
  } catch (const std::exception& e) {
    util::log_warn("obs: final trace flush failed: %s", e.what());
  }
}

bool TraceSession::active() noexcept {
  return g_session.load(std::memory_order_acquire) != nullptr;
}

TraceSession::ThreadBuffer* TraceSession::buffer_for_current_thread() {
  if (t_buffer_epoch == epoch_ && t_buffer != nullptr) return t_buffer;
  auto buffer = std::make_unique<ThreadBuffer>();
  ThreadBuffer* raw = buffer.get();
  {
    const util::MutexLock lock{buffers_mutex_};
    // The buffer is not yet published, but tid/events are guarded by its own
    // mutex; taking it here is uncontended and keeps the annotations exact.
    const util::MutexLock buffer_lock{raw->mutex};
    raw->events.reserve(events_per_thread_);
    raw->tid = static_cast<int>(buffers_.size());
    buffers_.push_back(std::move(buffer));
  }
  t_buffer = raw;
  t_buffer_epoch = epoch_;
  return raw;
}

std::uint64_t TraceSession::dropped_spans() const noexcept {
  std::uint64_t dropped = 0;
  const util::MutexLock lock{buffers_mutex_};
  for (const auto& buffer : buffers_) {
    const util::MutexLock buffer_lock{buffer->mutex};
    dropped += buffer->dropped;
  }
  return dropped;
}

void TraceSession::flush() {
  // flush_mutex_ serializes whole flushes (concurrent callers would otherwise
  // interleave on flushed_ and the output file) and is released only after
  // the file is rewritten. Lock order: flush -> buffers -> per-thread buffer.
  const util::MutexLock flush_lock{flush_mutex_};
  {
    const util::MutexLock lock{buffers_mutex_};
    for (const auto& buffer : buffers_) {
      const util::MutexLock buffer_lock{buffer->mutex};
      for (Event& event : buffer->events) {
        event.tid = buffer->tid;
        flushed_.push_back(std::move(event));
      }
      buffer->events.clear();
    }
  }
  write_file();
}

void TraceSession::write_file() {
  std::ofstream file{path_, std::ios::trunc};
  if (!file) throw std::runtime_error{"obs: cannot write trace file " + path_};
  // One event object per line so tests (and grep) can parse the file without
  // a JSON library. Timestamps are microseconds relative to session start,
  // with sub-µs kept as a fraction so close-together spans stay ordered.
  file << "{\"traceEvents\":[\n";
  std::string line;
  for (std::size_t i = 0; i < flushed_.size(); ++i) {
    const Event& event = flushed_[i];
    const std::uint64_t rel_ns = event.ts_ns - start_ns_;
    line.clear();
    line += "{\"name\":\"";
    json_escape_into(line, event.name);
    line += "\",\"cat\":\"";
    json_escape_into(line, event.category);
    line += "\",\"ph\":\"";
    line += event.phase;
    line += "\",\"ts\":";
    line += std::to_string(rel_ns / 1000);
    line += '.';
    const std::uint64_t frac = rel_ns % 1000;
    line += static_cast<char>('0' + frac / 100);
    line += static_cast<char>('0' + frac / 10 % 10);
    line += static_cast<char>('0' + frac % 10);
    line += ",\"pid\":1,\"tid\":";
    line += std::to_string(event.tid);
    line += "}";
    if (i + 1 < flushed_.size()) line += ',';
    line += '\n';
    file << line;
  }
  file << "]}\n";
}

Span::Span(std::string category, std::string name) {
  TraceSession* session = g_session.load(std::memory_order_acquire);
  if (session == nullptr) return;
  TraceSession::ThreadBuffer* buffer = session->buffer_for_current_thread();
  const util::MutexLock lock{buffer->mutex};
  // Reserve this span's E slot up front: a B is only recorded when both its
  // own slot and the eventual E slot fit, so the trace can never hold an
  // unmatched B from overflow.
  if (buffer->events.size() + buffer->open_spans + 2 >
      buffer->events.capacity()) {
    ++buffer->dropped;
    return;
  }
  buffer->events.push_back({name, category, now_ns(), 'B'});
  ++buffer->open_spans;
  buffer_ = buffer;
  category_ = std::move(category);
  name_ = std::move(name);
}

Span::~Span() {
  if (buffer_ == nullptr) return;
  const util::MutexLock lock{buffer_->mutex};
  buffer_->events.push_back({std::move(name_), std::move(category_), now_ns(), 'E'});
  --buffer_->open_spans;
}

}  // namespace fedguard::obs
