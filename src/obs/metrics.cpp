#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace fedguard::obs {

namespace {

/// Split "name{labels}" into ("name", "labels"); labels is empty when the
/// instrument name carries no label block.
std::pair<std::string, std::string> split_labels(const std::string& name) {
  const auto brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') return {name, ""};
  return {name.substr(0, brace), name.substr(brace + 1, name.size() - brace - 2)};
}

std::string join_labels(const std::string& base, const std::string& labels,
                        const std::string& extra) {
  std::string joined = base + "{" + labels;
  if (!labels.empty() && !extra.empty()) joined += ",";
  joined += extra + "}";
  return joined;
}

void append_double(std::ostringstream& out, double value) {
  if (std::isinf(value)) {
    out << (value > 0 ? "\"+Inf\"" : "\"-Inf\"");
    return;
  }
  std::ostringstream formatted;
  formatted.precision(17);
  formatted << value;
  out << formatted.str();
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string format_bound(double bound) {
  std::ostringstream out;
  out.precision(17);
  out << bound;
  return out.str();
}

}  // namespace

void Histogram::observe(double value) noexcept {
  if (cell_ == nullptr) return;
  const auto& bounds = cell_->upper_bounds;
  // First bucket whose upper bound admits the value; past-the-end = +Inf.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin());
  cell_->counts[bucket].fetch_add(1, std::memory_order_relaxed);
  cell_->total.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add_double(cell_->sum, value);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  if (cell_ == nullptr) return {};
  std::vector<std::uint64_t> out(cell_->upper_bounds.size() + 1, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = cell_->counts[i].load(std::memory_order_relaxed);
  }
  return out;
}

Counter Registry::counter(const std::string& name) {
  const util::MutexLock lock{mutex_};
  auto& cell = counters_[name];
  if (!cell) cell = std::make_unique<detail::CounterCell>();
  return Counter{cell.get()};
}

Gauge Registry::gauge(const std::string& name) {
  const util::MutexLock lock{mutex_};
  auto& cell = gauges_[name];
  if (!cell) cell = std::make_unique<detail::GaugeCell>();
  return Gauge{cell.get()};
}

Histogram Registry::histogram(const std::string& name,
                              std::span<const double> upper_bounds) {
  const util::MutexLock lock{mutex_};
  auto& cell = histograms_[name];
  if (!cell) {
    cell = std::make_unique<detail::HistogramCell>();
    cell->upper_bounds.assign(upper_bounds.begin(), upper_bounds.end());
    if (cell->upper_bounds.empty()) {
      cell->upper_bounds =
          default_buckets_.empty() ? default_buckets() : default_buckets_;
    }
    if (!std::is_sorted(cell->upper_bounds.begin(), cell->upper_bounds.end())) {
      histograms_.erase(name);
      throw std::invalid_argument{"obs: histogram bounds for '" + name +
                                  "' must be ascending"};
    }
    cell->counts =
        std::make_unique<std::atomic<std::uint64_t>[]>(cell->upper_bounds.size() + 1);
    for (std::size_t i = 0; i <= cell->upper_bounds.size(); ++i) cell->counts[i] = 0;
  }
  return Histogram{cell.get()};
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  const util::MutexLock lock{mutex_};
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0
                               : it->second->value.load(std::memory_order_relaxed);
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counter_values()
    const {
  const util::MutexLock lock{mutex_};
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) {
    out.emplace_back(name, cell->value.load(std::memory_order_relaxed));
  }
  return out;
}

double estimate_quantile(std::span<const double> upper_bounds,
                         std::span<const std::uint64_t> counts,
                         double q) noexcept {
  if (counts.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts[i]);
    if (next >= rank && counts[i] > 0) {
      if (i >= upper_bounds.size()) {
        // +Inf bucket: no upper edge to interpolate towards; report the
        // highest finite bound (or 0 when there are no finite buckets).
        return upper_bounds.empty() ? 0.0 : upper_bounds.back();
      }
      const double lower = i == 0 ? 0.0 : upper_bounds[i - 1];
      const double fraction =
          (rank - cumulative) / static_cast<double>(counts[i]);
      return lower + (upper_bounds[i] - lower) * fraction;
    }
    cumulative = next;
  }
  return upper_bounds.empty() ? 0.0 : upper_bounds.back();
}

std::vector<std::pair<std::string, std::uint64_t>> CounterDeltaTracker::take(
    const Registry& registry) {
  std::vector<std::pair<std::string, std::uint64_t>> deltas;
  for (const auto& [name, value] : registry.counter_values()) {
    std::uint64_t& last = last_[name];
    if (value > last) {
      deltas.emplace_back(name, value - last);
      last = value;
    } else {
      // zero_all() (tests/benches) may have reset the cell below our mark;
      // re-anchor so later growth is reported against the new baseline.
      last = value;
    }
  }
  return deltas;
}

void Registry::set_default_buckets(std::vector<double> upper_bounds) {
  if (!std::is_sorted(upper_bounds.begin(), upper_bounds.end())) {
    throw std::invalid_argument{"obs: default histogram buckets must be ascending"};
  }
  const util::MutexLock lock{mutex_};
  default_buckets_ = std::move(upper_bounds);
}

const std::vector<double>& Registry::default_buckets() {
  // Latency-oriented seconds scale: 100 µs .. 10 s, roughly 1-2.5-5 decades.
  static const std::vector<double> buckets{
      1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
      5e-2, 1e-1,  0.25, 0.5,  1.0,    2.5,  5.0,  10.0};
  return buckets;
}

std::string Registry::prometheus_text() const {
  const util::MutexLock lock{mutex_};
  std::ostringstream out;
  for (const auto& [name, cell] : counters_) {
    const auto [base, labels] = split_labels(name);
    out << "# TYPE " << base << " counter\n"
        << name << " " << cell->value.load(std::memory_order_relaxed) << "\n";
  }
  for (const auto& [name, cell] : gauges_) {
    const auto [base, labels] = split_labels(name);
    out << "# TYPE " << base << " gauge\n"
        << name << " " << cell->value.load(std::memory_order_relaxed) << "\n";
  }
  for (const auto& [name, cell] : histograms_) {
    const auto [base, labels] = split_labels(name);
    out << "# TYPE " << base << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < cell->upper_bounds.size(); ++i) {
      cumulative += cell->counts[i].load(std::memory_order_relaxed);
      out << join_labels(base + "_bucket", labels,
                         "le=\"" + format_bound(cell->upper_bounds[i]) + "\"")
          << " " << cumulative << "\n";
    }
    cumulative +=
        cell->counts[cell->upper_bounds.size()].load(std::memory_order_relaxed);
    out << join_labels(base + "_bucket", labels, "le=\"+Inf\"") << " " << cumulative
        << "\n";
    out << base + "_sum" << (labels.empty() ? "" : "{" + labels + "}") << " ";
    append_double(out, cell->sum.load(std::memory_order_relaxed));
    out << "\n"
        << base + "_count" << (labels.empty() ? "" : "{" + labels + "}") << " "
        << cell->total.load(std::memory_order_relaxed) << "\n";
  }
  return out.str();
}

std::string Registry::json_snapshot() const {
  const util::MutexLock lock{mutex_};
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, cell] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":"
        << cell->value.load(std::memory_order_relaxed);
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, cell] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":"
        << cell->value.load(std::memory_order_relaxed);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, cell] : histograms_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":{\"le\":[";
    for (std::size_t i = 0; i < cell->upper_bounds.size(); ++i) {
      if (i > 0) out << ",";
      append_double(out, cell->upper_bounds[i]);
    }
    out << "],\"counts\":[";
    for (std::size_t i = 0; i <= cell->upper_bounds.size(); ++i) {
      if (i > 0) out << ",";
      out << cell->counts[i].load(std::memory_order_relaxed);
    }
    out << "],\"count\":" << cell->total.load(std::memory_order_relaxed)
        << ",\"sum\":";
    append_double(out, cell->sum.load(std::memory_order_relaxed));
    // Quantile estimates come last so the stable prefix (le/counts/count/sum)
    // pinned by older consumers is untouched.
    std::vector<std::uint64_t> counts(cell->upper_bounds.size() + 1, 0);
    for (std::size_t i = 0; i < counts.size(); ++i) {
      counts[i] = cell->counts[i].load(std::memory_order_relaxed);
    }
    for (const auto& [key, q] :
         {std::pair<const char*, double>{"p50", 0.5},
          std::pair<const char*, double>{"p90", 0.9},
          std::pair<const char*, double>{"p99", 0.99}}) {
      out << ",\"" << key << "\":";
      append_double(out, estimate_quantile(cell->upper_bounds, counts, q));
    }
    out << "}";
  }
  out << "}}";
  return out.str();
}

void Registry::write_prometheus(const std::string& path) const {
  std::ofstream file{path, std::ios::trunc};
  if (!file) throw std::runtime_error{"obs: cannot write metrics file " + path};
  file << prometheus_text();
}

void Registry::zero_all() {
  // mutex_ serializes the whole reset against every exposition path (they all
  // lock mutex_ too), so a concurrent scrape sees pre- or post-reset state,
  // never a mix — see the contract note in the header.
  const util::MutexLock lock{mutex_};
  for (const auto& [name, cell] : counters_) cell->value.store(0);
  for (const auto& [name, cell] : gauges_) cell->value.store(0);
  for (const auto& [name, cell] : histograms_) {
    for (std::size_t i = 0; i <= cell->upper_bounds.size(); ++i) cell->counts[i] = 0;
    cell->total.store(0);
    cell->sum.store(0.0);
  }
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

}  // namespace fedguard::obs
