#pragma once
// Process-wide configuration for the numeric compute kernels (blocked GEMM,
// elementwise spans, aggregator distance passes). The tensor and defense
// layers consult this to decide (a) how many threads the kernel pool runs and
// (b) below which problem size a kernel stays serial — fine-grained fan-out
// on tiny inputs costs more than it saves.
//
// Resolution order for the thread count:
//   1. an explicit `threads > 0` set programmatically or via the experiment
//      descriptor key `kernel_threads`,
//   2. the FEDGUARD_THREADS environment variable (read once per process),
//   3. std::thread::hardware_concurrency().
//
// The kernel pool is distinct from parallel::global_pool(): the global pool
// runs coarse client tasks, the kernel pool runs fine-grained tile work.
// Kernels called from inside any pool worker (see in_worker_thread()) fall
// back to serial execution, so client-level and kernel-level parallelism
// never deadlock by waiting on each other.

#include <cstddef>
#include <functional>

namespace fedguard::parallel {

class ThreadPool;

struct KernelConfig {
  /// Kernel pool size; 0 = auto (FEDGUARD_THREADS, else hardware threads).
  std::size_t threads = 0;
  /// GEMMs with fewer than this many flops (2*m*k*n) run serially.
  std::size_t gemm_min_flops = std::size_t{1} << 22;
  /// Elementwise span ops (axpy/add/sub/scale/sum) shorter than this run
  /// serially.
  std::size_t elementwise_min_size = std::size_t{1} << 16;
  /// Aggregator distance passes touching fewer than this many floats
  /// (count * dim) run serially.
  std::size_t distance_min_elements = std::size_t{1} << 15;
};

/// Snapshot of the current process-wide kernel configuration.
[[nodiscard]] KernelConfig kernel_config() noexcept;

/// Replace the process-wide kernel configuration. Intended for startup /
/// bench setup; changing the thread count rebuilds the kernel pool on the
/// next kernel_pool() call, which must not race in-flight kernels.
void set_kernel_config(const KernelConfig& config) noexcept;

/// Resolved kernel thread count (always >= 1); see resolution order above.
[[nodiscard]] std::size_t kernel_threads() noexcept;

/// Parse a FEDGUARD_THREADS-style value; returns 0 (meaning "auto") for
/// null, empty, non-numeric, or non-positive input. Exposed for tests.
[[nodiscard]] std::size_t threads_from_env_value(const char* text) noexcept;

/// The pool the numeric kernels dispatch onto (lazily sized to
/// kernel_threads()).
[[nodiscard]] ThreadPool& kernel_pool();

/// True when fanning out `work_elements` of kernel work is worthwhile:
/// more than one kernel thread, not already inside a pool worker, and the
/// work meets the given serial-fallback threshold.
[[nodiscard]] bool should_parallelize(std::size_t work_elements,
                                      std::size_t threshold) noexcept;

/// Split [0, count) into at most kernel_threads() contiguous subranges whose
/// sizes are multiples of `grain` (except the last) and run `body(begin, end)`
/// for each on the kernel pool. Runs serially (one body call covering the
/// whole range) when fan-out is not worthwhile. `count == 0` is a no-op.
void kernel_parallel_ranges(std::size_t count, std::size_t grain,
                            const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace fedguard::parallel
