#include "parallel/kernel_config.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>

#include "parallel/thread_pool.hpp"
#include "util/thread_annotations.hpp"

namespace fedguard::parallel {

namespace {

// The config is read on every kernel launch (including tiny elementwise
// spans), so the fields live in relaxed atomics rather than behind a mutex.
struct AtomicConfig {
  std::atomic<std::size_t> threads{KernelConfig{}.threads};
  std::atomic<std::size_t> gemm_min_flops{KernelConfig{}.gemm_min_flops};
  std::atomic<std::size_t> elementwise_min_size{KernelConfig{}.elementwise_min_size};
  std::atomic<std::size_t> distance_min_elements{KernelConfig{}.distance_min_elements};
};

AtomicConfig& atomic_config() {
  static AtomicConfig instance;
  return instance;
}

std::size_t env_threads() {
  // Read once: the environment is process-wide startup configuration, not a
  // runtime knob.
  static const std::size_t value = threads_from_env_value(std::getenv("FEDGUARD_THREADS"));
  return value;
}

std::size_t hardware_threads() {
  static const std::size_t value =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return value;
}

struct PoolState {
  util::Mutex mutex;
  std::unique_ptr<ThreadPool> pool FEDGUARD_GUARDED_BY(mutex);
  std::size_t pool_threads FEDGUARD_GUARDED_BY(mutex) = 0;
};

PoolState& pool_state() {
  static PoolState instance;
  return instance;
}

}  // namespace

std::size_t threads_from_env_value(const char* text) noexcept {
  if (text == nullptr || *text == '\0') return 0;
  char* end = nullptr;
  const long parsed = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || parsed <= 0) return 0;
  return static_cast<std::size_t>(parsed);
}

KernelConfig kernel_config() noexcept {
  const AtomicConfig& a = atomic_config();
  KernelConfig config;
  config.threads = a.threads.load(std::memory_order_relaxed);
  config.gemm_min_flops = a.gemm_min_flops.load(std::memory_order_relaxed);
  config.elementwise_min_size = a.elementwise_min_size.load(std::memory_order_relaxed);
  config.distance_min_elements = a.distance_min_elements.load(std::memory_order_relaxed);
  return config;
}

void set_kernel_config(const KernelConfig& config) noexcept {
  AtomicConfig& a = atomic_config();
  a.threads.store(config.threads, std::memory_order_relaxed);
  a.gemm_min_flops.store(config.gemm_min_flops, std::memory_order_relaxed);
  a.elementwise_min_size.store(config.elementwise_min_size, std::memory_order_relaxed);
  a.distance_min_elements.store(config.distance_min_elements, std::memory_order_relaxed);
}

std::size_t kernel_threads() noexcept {
  const std::size_t configured =
      atomic_config().threads.load(std::memory_order_relaxed);
  if (configured > 0) return configured;
  if (const std::size_t env = env_threads(); env > 0) return env;
  return hardware_threads();
}

ThreadPool& kernel_pool() {
  const std::size_t want = kernel_threads();
  PoolState& s = pool_state();
  const util::MutexLock lock{s.mutex};
  if (!s.pool || s.pool_threads != want) {
    s.pool.reset();  // join the old workers before replacing them
    s.pool = std::make_unique<ThreadPool>(want, "kernel");
    s.pool_threads = want;
  }
  return *s.pool;
}

bool should_parallelize(std::size_t work_elements, std::size_t threshold) noexcept {
  if (work_elements < threshold) return false;
  if (in_worker_thread()) return false;
  return kernel_threads() > 1;
}

void kernel_parallel_ranges(std::size_t count, std::size_t grain,
                            const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t threads = in_worker_thread() ? 1 : kernel_threads();
  const std::size_t blocks = (count + grain - 1) / grain;
  const std::size_t chunks = std::min(threads, blocks);
  if (chunks <= 1) {
    body(0, count);
    return;
  }
  const std::size_t blocks_per_chunk = (blocks + chunks - 1) / chunks;
  const std::size_t stride = blocks_per_chunk * grain;
  kernel_pool().run_batch(chunks, [&](std::size_t chunk) {
    const std::size_t begin = chunk * stride;
    const std::size_t end = std::min(count, begin + stride);
    if (begin < end) body(begin, end);
  });
}

}  // namespace fedguard::parallel
