#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace fedguard::parallel {

namespace {
thread_local bool t_in_worker = false;
}  // namespace

bool in_worker_thread() noexcept { return t_in_worker; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock{mutex_};
    stopping_ = true;
  }
  condition_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::worker_loop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock{mutex_};
      condition_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::run_batch(std::size_t count, const std::function<void(std::size_t)>& factory) {
  if (count == 0) return;  // before the lock: an empty batch must be free

  if (thread_count() == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) factory(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&factory, i] { factory(i); }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const std::size_t threads = pool.thread_count();
  if (threads == 1 || count < 2) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t chunks = std::min(threads, count);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  pool.run_batch(chunks, [&](std::size_t chunk) {
    const std::size_t lo = begin + chunk * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

}  // namespace fedguard::parallel
