#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <string>

#include "obs/trace.hpp"

namespace fedguard::parallel {

namespace {
thread_local bool t_in_worker = false;
}  // namespace

bool in_worker_thread() noexcept { return t_in_worker; }

ThreadPool::ThreadPool(std::size_t threads, const char* name) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  auto& registry = obs::Registry::global();
  const std::string label = std::string{"{pool=\""} + name + "\"}";
  queue_depth_ = registry.gauge("pool_queue_depth" + label);
  tasks_total_ = registry.counter("pool_tasks_total" + label);
  task_seconds_ = registry.histogram("pool_task_seconds" + label);
  worker_busy_ns_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    worker_busy_ns_.push_back(
        registry.counter(std::string{"pool_worker_busy_ns_total{pool=\""} + name +
                         "\",worker=\"" + std::to_string(i) + "\"}"));
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const util::MutexLock lock{mutex_};
    stopping_ = true;
  }
  condition_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      const util::MutexLock lock{mutex_};
      while (!stopping_ && tasks_.empty()) condition_.wait(mutex_);
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    queue_depth_.sub(1);
    const std::uint64_t start_ns = obs::now_ns();
    {
      FEDGUARD_TRACE_SPAN("pool.task", "task");
      task();
    }
    const std::uint64_t busy_ns = obs::now_ns() - start_ns;
    tasks_total_.add(1);
    task_seconds_.observe(static_cast<double>(busy_ns) * 1e-9);
    worker_busy_ns_[worker_index].add(busy_ns);
  }
}

void ThreadPool::run_batch(std::size_t count, const std::function<void(std::size_t)>& factory) {
  if (count == 0) return;  // before the lock: an empty batch must be free

  if (thread_count() == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) factory(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&factory, i] { factory(i); }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool{0, "clients"};
  return pool;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const std::size_t threads = pool.thread_count();
  if (threads == 1 || count < 2) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t chunks = std::min(threads, count);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  pool.run_batch(chunks, [&](std::size_t chunk) {
    const std::size_t lo = begin + chunk * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

}  // namespace fedguard::parallel
