#pragma once
// Fixed-size worker pool used to execute the client work items of a federated
// round concurrently. On the paper's testbed each of the m=50 sampled clients
// runs on its own process; here each becomes a pool task.
//
// Design notes:
//  - submit() returns std::future so callers can propagate exceptions from
//    client training back to the simulation loop.
//  - The pool is also usable as a plain bulk executor via run_batch().

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/thread_annotations.hpp"

namespace fedguard::parallel {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 selects std::thread::hardware_concurrency()
  /// (minimum 1). `name` labels this pool's metrics (pool_queue_depth,
  /// pool_tasks_total, pool_task_seconds, pool_worker_busy_ns_total — see
  /// docs/OBSERVABILITY.md); distinct pools must use distinct names.
  explicit ThreadPool(std::size_t threads = 0, const char* name = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueue a task; the returned future yields its result (or exception).
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& task) {
    using R = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    {
      const util::MutexLock lock{mutex_};
      if (stopping_) throw std::runtime_error{"ThreadPool: submit after shutdown"};
      tasks_.emplace([packaged] { (*packaged)(); });
    }
    queue_depth_.add(1);
    condition_.notify_one();
    return result;
  }

  /// Run `count` tasks produced by `factory(i)` and wait for all of them.
  /// Rethrows the first exception encountered (after all tasks finish).
  /// `count == 0` returns immediately without touching the queue or its lock.
  void run_batch(std::size_t count, const std::function<void(std::size_t)>& factory);

 private:
  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  util::Mutex mutex_;
  std::queue<std::function<void()>> tasks_ FEDGUARD_GUARDED_BY(mutex_);
  util::CondVar condition_;
  bool stopping_ FEDGUARD_GUARDED_BY(mutex_) = false;
  // Registry handles, resolved once at construction — the per-task cost is
  // relaxed atomic adds only.
  obs::Gauge queue_depth_;
  obs::Counter tasks_total_;
  obs::Histogram task_seconds_;
  std::vector<obs::Counter> worker_busy_ns_;
};

/// Global pool shared by the simulation (lazily constructed, sized from
/// hardware concurrency). Intended for coarse-grained client tasks only.
[[nodiscard]] ThreadPool& global_pool();

/// Parallel loop over [begin, end) with static chunking on the given pool.
/// Falls back to a serial loop when the range is small or the pool has a
/// single thread. An empty or inverted range (begin >= end) is a no-op.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// True on any ThreadPool worker thread (of any pool). The numeric kernels
/// use this to fall back to serial execution instead of fanning out from
/// inside a pool task — a nested run_batch that blocks a worker on futures
/// other workers must drain can deadlock the pool.
[[nodiscard]] bool in_worker_thread() noexcept;

}  // namespace fedguard::parallel
