#pragma once
// Client data partitioners. The paper splits MNIST between N=100 clients
// using a Dirichlet distribution with alpha=10 (Hsu, Qi & Brown 2019) to
// simulate realistic non-IID federated data.

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace fedguard::data {

/// One index list per client; indices refer into the source dataset.
using Partition = std::vector<std::vector<std::size_t>>;

/// Named heterogeneity regimes selectable from experiment descriptors
/// (partition_scheme) and the scenario sweep's data-regime axis.
enum class PartitionScheme {
  Iid,           // uniform shuffle-and-deal
  Dirichlet,     // per-class Dir(α) label skew (the paper's default)
  Shard,         // pathological few-classes-per-client shards
  QuantitySkew,  // Dir(α) over per-client dataset SIZES, labels IID
};

[[nodiscard]] const char* to_string(PartitionScheme scheme) noexcept;
/// Parse "iid" / "dirichlet" / "shard" / "quantity_skew"; throws
/// std::invalid_argument enumerating the valid names on unknown input.
[[nodiscard]] PartitionScheme partition_scheme_from_string(const std::string& text);

/// Dirichlet partition (Hsu et al.): for each class, draw client proportions
/// from Dir(alpha * 1_N) and split that class's samples accordingly. Larger
/// alpha -> closer to IID. Every client is guaranteed at least one sample
/// (singleton backfill from the largest client).
[[nodiscard]] Partition dirichlet_partition(const Dataset& dataset, std::size_t num_clients,
                                            double alpha, std::uint64_t seed);

/// Uniform IID split (shuffle then deal round-robin).
[[nodiscard]] Partition iid_partition(std::size_t dataset_size, std::size_t num_clients,
                                      std::uint64_t seed);

/// Pathological shard split (McMahan et al. 2016): sort by label, cut into
/// num_clients * shards_per_client shards, deal shards_per_client to each
/// client. Gives each client very few classes.
[[nodiscard]] Partition shard_partition(const Dataset& dataset, std::size_t num_clients,
                                        std::size_t shards_per_client, std::uint64_t seed);

/// Quantity skew (ByzFL's γ-similarity axis, Dirichlet flavor): client SIZES
/// are drawn from Dir(alpha * 1_N) over a label-shuffled pool, so clients see
/// an IID label mix but wildly unequal sample counts for small alpha. Every
/// client gets at least one sample.
[[nodiscard]] Partition quantity_skew_partition(std::size_t dataset_size,
                                                std::size_t num_clients, double alpha,
                                                std::uint64_t seed);

/// Knobs for make_partition; each scheme reads the ones it needs.
struct PartitionOptions {
  PartitionScheme scheme = PartitionScheme::Dirichlet;
  std::size_t num_clients = 1;
  double alpha = 10.0;  // Dirichlet / quantity-skew concentration
  std::size_t shards_per_client = 2;
  std::uint64_t seed = 0;
};

/// Single dispatch point over the schemes above (the runner and the scenario
/// sweep both go through here so a regime label means the same thing
/// everywhere).
[[nodiscard]] Partition make_partition(const Dataset& dataset,
                                       const PartitionOptions& options);

/// Per-client per-class sample counts (diagnostics / tests).
[[nodiscard]] std::vector<std::vector<std::size_t>> partition_class_histogram(
    const Dataset& dataset, const Partition& partition);

}  // namespace fedguard::data
