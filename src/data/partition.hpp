#pragma once
// Client data partitioners. The paper splits MNIST between N=100 clients
// using a Dirichlet distribution with alpha=10 (Hsu, Qi & Brown 2019) to
// simulate realistic non-IID federated data.

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace fedguard::data {

/// One index list per client; indices refer into the source dataset.
using Partition = std::vector<std::vector<std::size_t>>;

/// Dirichlet partition (Hsu et al.): for each class, draw client proportions
/// from Dir(alpha * 1_N) and split that class's samples accordingly. Larger
/// alpha -> closer to IID. Every client is guaranteed at least one sample
/// (singleton backfill from the largest client).
[[nodiscard]] Partition dirichlet_partition(const Dataset& dataset, std::size_t num_clients,
                                            double alpha, std::uint64_t seed);

/// Uniform IID split (shuffle then deal round-robin).
[[nodiscard]] Partition iid_partition(std::size_t dataset_size, std::size_t num_clients,
                                      std::uint64_t seed);

/// Pathological shard split (McMahan et al. 2016): sort by label, cut into
/// num_clients * shards_per_client shards, deal shards_per_client to each
/// client. Gives each client very few classes.
[[nodiscard]] Partition shard_partition(const Dataset& dataset, std::size_t num_clients,
                                        std::size_t shards_per_client, std::uint64_t seed);

/// Per-client per-class sample counts (diagnostics / tests).
[[nodiscard]] std::vector<std::vector<std::size_t>> partition_class_histogram(
    const Dataset& dataset, const Partition& partition);

}  // namespace fedguard::data
