#pragma once
// Labelled image dataset container. Images are stored as a single
// [N, C, H, W] tensor with values in [0, 1]; labels are ints in
// [0, num_classes).

#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace fedguard::data {

class Dataset {
 public:
  Dataset() = default;
  /// Takes ownership of images [N, C, H, W] and labels (N entries).
  Dataset(tensor::Tensor images, std::vector<int> labels, std::size_t num_classes);

  [[nodiscard]] std::size_t size() const noexcept { return labels_.size(); }
  [[nodiscard]] bool empty() const noexcept { return labels_.empty(); }
  [[nodiscard]] std::size_t num_classes() const noexcept { return num_classes_; }
  [[nodiscard]] std::size_t channels() const noexcept { return images_.dim(1); }
  [[nodiscard]] std::size_t height() const noexcept { return images_.dim(2); }
  [[nodiscard]] std::size_t width() const noexcept { return images_.dim(3); }
  [[nodiscard]] std::size_t pixels() const noexcept { return channels() * height() * width(); }

  [[nodiscard]] const tensor::Tensor& images() const noexcept { return images_; }
  [[nodiscard]] std::span<const int> labels() const noexcept { return labels_; }
  [[nodiscard]] int label(std::size_t i) const noexcept { return labels_[i]; }
  /// Mutable label access (used by the label-flipping data poisoning attack).
  void set_label(std::size_t i, int label) noexcept { labels_[i] = label; }

  /// Flat pixel view of sample `i` (length pixels()).
  [[nodiscard]] std::span<const float> image(std::size_t i) const noexcept;

  /// Gather samples by index into a [n, C, H, W] batch tensor + labels.
  struct Batch {
    tensor::Tensor images;    // [n, C, H, W]
    std::vector<int> labels;  // n entries
  };
  [[nodiscard]] Batch gather(std::span<const std::size_t> indices) const;

  /// All samples of `indices`, flattened to [n, pixels] (CVAE input format).
  [[nodiscard]] tensor::Tensor gather_flat(std::span<const std::size_t> indices) const;

  /// New dataset holding copies of the given samples.
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

  /// Per-class sample counts (num_classes entries).
  [[nodiscard]] std::vector<std::size_t> class_histogram() const;

 private:
  tensor::Tensor images_;  // [N, C, H, W]
  std::vector<int> labels_;
  std::size_t num_classes_ = 0;
};

}  // namespace fedguard::data
