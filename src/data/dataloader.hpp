#pragma once
// Mini-batch iteration over a subset of a Dataset, reshuffled each epoch.

#include <cstdint>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace fedguard::data {

class DataLoader {
 public:
  /// Iterates `indices` into `dataset` in mini-batches. The dataset must
  /// outlive the loader.
  DataLoader(const Dataset& dataset, std::vector<std::size_t> indices,
             std::size_t batch_size, std::uint64_t seed);

  /// Reshuffle and restart the epoch.
  void start_epoch();

  /// Fetch the next batch; returns false at epoch end. The final batch of an
  /// epoch may be smaller than batch_size.
  [[nodiscard]] bool next(Dataset::Batch& batch);

  [[nodiscard]] std::size_t sample_count() const noexcept { return indices_.size(); }
  [[nodiscard]] std::size_t batches_per_epoch() const noexcept {
    return (indices_.size() + batch_size_ - 1) / batch_size_;
  }

 private:
  const Dataset& dataset_;
  std::vector<std::size_t> indices_;
  std::size_t batch_size_;
  std::size_t cursor_ = 0;
  util::Rng rng_;
};

}  // namespace fedguard::data
