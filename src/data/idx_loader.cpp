#include "data/idx_loader.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "util/serialize.hpp"

namespace fedguard::data {

namespace {

std::uint32_t read_be_u32(std::istream& in) {
  std::byte bytes[4];
  if (!util::read_bytes(in, bytes)) throw std::runtime_error{"idx: truncated header"};
  return (std::to_integer<std::uint32_t>(bytes[0]) << 24) |
         (std::to_integer<std::uint32_t>(bytes[1]) << 16) |
         (std::to_integer<std::uint32_t>(bytes[2]) << 8) |
         std::to_integer<std::uint32_t>(bytes[3]);
}

constexpr std::uint32_t kImagesMagic = 0x00000803;
constexpr std::uint32_t kLabelsMagic = 0x00000801;

}  // namespace

Dataset load_idx_dataset(const std::string& images_path, const std::string& labels_path,
                         std::size_t num_classes) {
  std::ifstream images_file{images_path, std::ios::binary};
  if (!images_file) throw std::runtime_error{"idx: cannot open " + images_path};
  std::ifstream labels_file{labels_path, std::ios::binary};
  if (!labels_file) throw std::runtime_error{"idx: cannot open " + labels_path};

  if (read_be_u32(images_file) != kImagesMagic) {
    throw std::runtime_error{"idx: bad images magic in " + images_path};
  }
  const std::uint32_t image_count = read_be_u32(images_file);
  const std::uint32_t rows = read_be_u32(images_file);
  const std::uint32_t cols = read_be_u32(images_file);

  if (read_be_u32(labels_file) != kLabelsMagic) {
    throw std::runtime_error{"idx: bad labels magic in " + labels_path};
  }
  const std::uint32_t label_count = read_be_u32(labels_file);
  if (image_count != label_count) {
    throw std::runtime_error{"idx: image/label count mismatch"};
  }

  const std::size_t pixels = static_cast<std::size_t>(rows) * cols;
  tensor::Tensor images{{image_count, 1, rows, cols}};
  std::vector<std::byte> row_buffer(pixels);
  for (std::size_t n = 0; n < image_count; ++n) {
    if (!util::read_bytes(images_file, row_buffer)) {
      throw std::runtime_error{"idx: truncated image data"};
    }
    float* dst = images.raw() + n * pixels;
    for (std::size_t i = 0; i < pixels; ++i) {
      dst[i] = static_cast<float>(std::to_integer<unsigned>(row_buffer[i])) / 255.0f;
    }
  }

  std::vector<int> labels(image_count);
  std::vector<std::byte> label_buffer(image_count);
  if (!util::read_bytes(labels_file, label_buffer)) {
    throw std::runtime_error{"idx: truncated label data"};
  }
  for (std::size_t i = 0; i < image_count; ++i) {
    labels[i] = std::to_integer<int>(label_buffer[i]);
  }

  return Dataset{std::move(images), std::move(labels), num_classes};
}

bool idx_dataset_available(const std::string& images_path, const std::string& labels_path) {
  std::ifstream images_file{images_path, std::ios::binary};
  std::ifstream labels_file{labels_path, std::ios::binary};
  if (!images_file || !labels_file) return false;
  try {
    return read_be_u32(images_file) == kImagesMagic &&
           read_be_u32(labels_file) == kLabelsMagic;
  } catch (const std::runtime_error&) {
    return false;
  }
}

}  // namespace fedguard::data
