#include "data/dataset.hpp"

#include <stdexcept>

namespace fedguard::data {

Dataset::Dataset(tensor::Tensor images, std::vector<int> labels, std::size_t num_classes)
    : images_{std::move(images)}, labels_{std::move(labels)}, num_classes_{num_classes} {
  if (images_.rank() != 4 || images_.dim(0) != labels_.size()) {
    throw std::invalid_argument{"Dataset: images must be [N, C, H, W] with N == labels"};
  }
  for (const int label : labels_) {
    if (label < 0 || static_cast<std::size_t>(label) >= num_classes_) {
      throw std::invalid_argument{"Dataset: label out of range"};
    }
  }
}

std::span<const float> Dataset::image(std::size_t i) const noexcept {
  return images_.data().subspan(i * pixels(), pixels());
}

Dataset::Batch Dataset::gather(std::span<const std::size_t> indices) const {
  Batch batch;
  batch.images = tensor::Tensor{{indices.size(), channels(), height(), width()}};
  batch.labels.resize(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto src = image(indices[i]);
    std::copy(src.begin(), src.end(), batch.images.data().begin() +
                                          static_cast<std::ptrdiff_t>(i * pixels()));
    batch.labels[i] = labels_[indices[i]];
  }
  return batch;
}

tensor::Tensor Dataset::gather_flat(std::span<const std::size_t> indices) const {
  tensor::Tensor out{{indices.size(), pixels()}};
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const auto src = image(indices[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Batch batch = gather(indices);
  return Dataset{std::move(batch.images), std::move(batch.labels), num_classes_};
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> histogram(num_classes_, 0);
  for (const int label : labels_) ++histogram[static_cast<std::size_t>(label)];
  return histogram;
}

}  // namespace fedguard::data
