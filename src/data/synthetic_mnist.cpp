#include "data/synthetic_mnist.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace fedguard::data {

namespace {

struct Point {
  double x, y;
};

using Polyline = std::vector<Point>;

/// Closed circle approximation as a polyline.
Polyline circle(double cx, double cy, double rx, double ry, int segments = 14) {
  Polyline out;
  out.reserve(static_cast<std::size_t>(segments) + 1);
  for (int i = 0; i <= segments; ++i) {
    const double t = 2.0 * 3.14159265358979323846 * i / segments;
    out.push_back({cx + rx * std::cos(t), cy + ry * std::sin(t)});
  }
  return out;
}

/// Stroke skeletons per digit, in a unit box (x right, y down), content
/// roughly within [0.2, 0.8].
std::vector<Polyline> digit_skeleton(int digit) {
  switch (digit) {
    case 0:
      return {circle(0.5, 0.5, 0.21, 0.29)};
    case 1:
      return {{{0.38, 0.32}, {0.52, 0.2}, {0.52, 0.8}}};
    case 2:
      return {{{0.28, 0.36},
               {0.33, 0.24},
               {0.5, 0.2},
               {0.67, 0.26},
               {0.71, 0.38},
               {0.6, 0.52},
               {0.42, 0.64},
               {0.28, 0.8},
               {0.74, 0.8}}};
    case 3:
      return {{{0.3, 0.27},
               {0.46, 0.2},
               {0.64, 0.26},
               {0.66, 0.38},
               {0.52, 0.48},
               {0.68, 0.58},
               {0.66, 0.72},
               {0.46, 0.8},
               {0.29, 0.72}}};
    case 4:
      return {{{0.62, 0.8}, {0.62, 0.2}, {0.26, 0.62}, {0.78, 0.62}}};
    case 5:
      return {{{0.7, 0.2},
               {0.33, 0.2},
               {0.3, 0.46},
               {0.52, 0.42},
               {0.68, 0.52},
               {0.68, 0.68},
               {0.5, 0.8},
               {0.3, 0.74}}};
    case 6: {
      Polyline hook{{0.64, 0.2}, {0.46, 0.32}, {0.34, 0.5}, {0.3, 0.64}};
      return {hook, circle(0.47, 0.64, 0.17, 0.16)};
    }
    case 7:
      return {{{0.26, 0.2}, {0.74, 0.2}, {0.46, 0.8}}};
    case 8:
      return {circle(0.5, 0.35, 0.16, 0.15), circle(0.5, 0.65, 0.19, 0.16)};
    case 9: {
      Polyline tail{{0.66, 0.38}, {0.64, 0.6}, {0.56, 0.8}};
      return {circle(0.52, 0.36, 0.16, 0.16), tail};
    }
    default:
      throw std::invalid_argument{"digit_skeleton: digit must be 0..9"};
  }
}

/// Squared distance from point p to segment ab.
double segment_distance_squared(const Point& p, const Point& a, const Point& b) {
  const double abx = b.x - a.x, aby = b.y - a.y;
  const double apx = p.x - a.x, apy = p.y - a.y;
  const double ab2 = abx * abx + aby * aby;
  double t = ab2 > 0.0 ? (apx * abx + apy * aby) / ab2 : 0.0;
  t = std::clamp(t, 0.0, 1.0);
  const double dx = apx - t * abx, dy = apy - t * aby;
  return dx * dx + dy * dy;
}

struct Affine {
  // [x'; y'] = M [x - 0.5; y - 0.5] + [0.5 + tx; 0.5 + ty]
  double m00, m01, m10, m11, tx, ty;

  [[nodiscard]] Point apply(const Point& p) const noexcept {
    const double x = p.x - 0.5, y = p.y - 0.5;
    return {m00 * x + m01 * y + 0.5 + tx, m10 * x + m11 * y + 0.5 + ty};
  }
};

Affine random_affine(util::Rng& rng, const SyntheticMnistOptions& o) {
  const double theta = rng.normal(0.0, o.rotation_stddev_deg * 3.14159265358979323846 / 180.0);
  const double sx = 1.0 + rng.normal(0.0, o.scale_jitter);
  const double sy = 1.0 + rng.normal(0.0, o.scale_jitter);
  const double shear = rng.normal(0.0, o.shear_stddev);
  const double c = std::cos(theta), s = std::sin(theta);
  Affine a;
  // rotation * shear * scale
  a.m00 = c * sx + (-s) * shear * sx;
  a.m01 = (-s) * sy;
  a.m10 = s * sx + c * shear * sx;
  a.m11 = c * sy;
  a.tx = rng.normal(0.0, o.translate_jitter);
  a.ty = rng.normal(0.0, o.translate_jitter);
  return a;
}

}  // namespace

std::vector<float> render_digit(int digit, util::Rng& rng,
                                const SyntheticMnistOptions& o) {
  const std::size_t size = o.image_size;
  const double scale = static_cast<double>(size);
  std::vector<float> image(size * size, 0.0f);

  const Affine affine = random_affine(rng, o);
  std::vector<Polyline> strokes = digit_skeleton(digit);
  for (auto& stroke : strokes) {
    for (auto& point : stroke) point = affine.apply(point);
  }

  const double thickness =
      std::max(0.6, rng.normal(o.thickness_mean, o.thickness_jitter)) * (scale / 28.0);
  const double radius2 = thickness * thickness;
  const double falloff = thickness * 0.9;

  // Rasterize: intensity from distance to the nearest stroke segment.
  for (std::size_t py = 0; py < size; ++py) {
    for (std::size_t px = 0; px < size; ++px) {
      const Point p{(static_cast<double>(px) + 0.5) / scale,
                    (static_cast<double>(py) + 0.5) / scale};
      double best2 = 1e9;
      for (const auto& stroke : strokes) {
        for (std::size_t i = 0; i + 1 < stroke.size(); ++i) {
          best2 = std::min(best2, segment_distance_squared(p, stroke[i], stroke[i + 1]));
        }
      }
      const double d = std::sqrt(best2) * scale;  // distance in pixels
      double intensity;
      if (d * d <= radius2) {
        intensity = 1.0;
      } else {
        const double overshoot = d - thickness;
        intensity = std::max(0.0, 1.0 - overshoot / falloff);
      }
      image[py * size + px] = static_cast<float>(intensity);
    }
  }

  if (o.pixel_noise_stddev > 0.0) {
    for (auto& v : image) {
      v = std::clamp(v + static_cast<float>(rng.normal(0.0, o.pixel_noise_stddev)), 0.0f,
                     1.0f);
    }
  }
  return image;
}

Dataset generate_synthetic_mnist_per_class(std::span<const std::size_t> class_counts,
                                           std::uint64_t seed,
                                           const SyntheticMnistOptions& options) {
  if (class_counts.size() != 10) {
    throw std::invalid_argument{"generate_synthetic_mnist_per_class: need 10 class counts"};
  }
  const std::size_t total = std::accumulate(class_counts.begin(), class_counts.end(),
                                            std::size_t{0});
  const std::size_t size = options.image_size;
  util::Rng rng{seed};

  tensor::Tensor images{{total, 1, size, size}};
  std::vector<int> labels;
  labels.reserve(total);
  std::size_t offset = 0;
  for (int digit = 0; digit < 10; ++digit) {
    for (std::size_t i = 0; i < class_counts[static_cast<std::size_t>(digit)]; ++i) {
      const std::vector<float> pixels = render_digit(digit, rng, options);
      std::copy(pixels.begin(), pixels.end(),
                images.data().begin() + static_cast<std::ptrdiff_t>(offset * size * size));
      labels.push_back(digit);
      ++offset;
    }
  }

  // Shuffle sample order so contiguous index ranges are class-mixed.
  std::vector<std::size_t> order(total);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  tensor::Tensor shuffled{{total, 1, size, size}};
  std::vector<int> shuffled_labels(total);
  const std::size_t pixel_count = size * size;
  for (std::size_t i = 0; i < total; ++i) {
    const auto src = images.data().subspan(order[i] * pixel_count, pixel_count);
    std::copy(src.begin(), src.end(),
              shuffled.data().begin() + static_cast<std::ptrdiff_t>(i * pixel_count));
    shuffled_labels[i] = labels[order[i]];
  }
  return Dataset{std::move(shuffled), std::move(shuffled_labels), 10};
}

Dataset generate_synthetic_mnist(std::size_t count, std::uint64_t seed,
                                 const SyntheticMnistOptions& options) {
  std::vector<std::size_t> class_counts(10, count / 10);
  for (std::size_t i = 0; i < count % 10; ++i) ++class_counts[i];
  return generate_synthetic_mnist_per_class(class_counts, seed, options);
}

}  // namespace fedguard::data
