#pragma once
// Loader for the IDX file format used by the original MNIST distribution
// (http://yann.lecun.com/exdb/mnist/). When the real dataset files are
// available on disk, they can be used instead of the synthetic substitute:
//
//   Dataset train = load_idx_dataset("train-images-idx3-ubyte",
//                                    "train-labels-idx1-ubyte");

#include <string>

#include "data/dataset.hpp"

namespace fedguard::data {

/// Parse an IDX3 (images, magic 0x00000803) + IDX1 (labels, magic 0x00000801)
/// pair into a Dataset with pixel values scaled to [0, 1].
/// Throws std::runtime_error on I/O or format errors.
[[nodiscard]] Dataset load_idx_dataset(const std::string& images_path,
                                       const std::string& labels_path,
                                       std::size_t num_classes = 10);

/// True if both files exist and start with the expected IDX magic numbers.
[[nodiscard]] bool idx_dataset_available(const std::string& images_path,
                                         const std::string& labels_path);

}  // namespace fedguard::data
