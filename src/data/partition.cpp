#include "data/partition.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace fedguard::data {

const char* to_string(PartitionScheme scheme) noexcept {
  switch (scheme) {
    case PartitionScheme::Iid: return "iid";
    case PartitionScheme::Dirichlet: return "dirichlet";
    case PartitionScheme::Shard: return "shard";
    case PartitionScheme::QuantitySkew: return "quantity_skew";
  }
  return "unknown";
}

PartitionScheme partition_scheme_from_string(const std::string& text) {
  constexpr PartitionScheme kAll[] = {PartitionScheme::Iid, PartitionScheme::Dirichlet,
                                      PartitionScheme::Shard, PartitionScheme::QuantitySkew};
  for (const PartitionScheme scheme : kAll) {
    if (text == to_string(scheme)) return scheme;
  }
  std::string message = "unknown partition scheme: '" + text + "' (valid:";
  for (const PartitionScheme scheme : kAll) {
    message += ' ';
    message += to_string(scheme);
  }
  message += ')';
  throw std::invalid_argument{message};
}

Partition dirichlet_partition(const Dataset& dataset, std::size_t num_clients, double alpha,
                              std::uint64_t seed) {
  if (num_clients == 0) throw std::invalid_argument{"dirichlet_partition: no clients"};
  if (alpha <= 0.0) throw std::invalid_argument{"dirichlet_partition: alpha must be > 0"};
  util::Rng rng{seed};

  // Bucket sample indices by class, shuffled within each class.
  std::vector<std::vector<std::size_t>> by_class(dataset.num_classes());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    by_class[static_cast<std::size_t>(dataset.label(i))].push_back(i);
  }
  for (auto& bucket : by_class) rng.shuffle(bucket);

  Partition partition(num_clients);
  const std::vector<double> alpha_vector(num_clients, alpha);
  for (const auto& bucket : by_class) {
    if (bucket.empty()) continue;
    const std::vector<double> proportions = rng.dirichlet(alpha_vector);
    // Largest-remainder apportionment of bucket.size() samples.
    std::vector<std::size_t> counts(num_clients, 0);
    std::vector<std::pair<double, std::size_t>> remainders(num_clients);
    std::size_t assigned = 0;
    for (std::size_t c = 0; c < num_clients; ++c) {
      const double exact = proportions[c] * static_cast<double>(bucket.size());
      counts[c] = static_cast<std::size_t>(exact);
      remainders[c] = {exact - static_cast<double>(counts[c]), c};
      assigned += counts[c];
    }
    std::sort(remainders.begin(), remainders.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (std::size_t k = 0; assigned < bucket.size(); ++k, ++assigned) {
      ++counts[remainders[k % num_clients].second];
    }
    std::size_t offset = 0;
    for (std::size_t c = 0; c < num_clients; ++c) {
      partition[c].insert(partition[c].end(), bucket.begin() + static_cast<std::ptrdiff_t>(offset),
                          bucket.begin() + static_cast<std::ptrdiff_t>(offset + counts[c]));
      offset += counts[c];
    }
  }

  // Guarantee every client at least one sample: steal from the largest.
  for (std::size_t c = 0; c < num_clients; ++c) {
    if (!partition[c].empty()) continue;
    const auto largest = std::max_element(
        partition.begin(), partition.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    if (largest->size() <= 1) {
      throw std::runtime_error{"dirichlet_partition: not enough samples for all clients"};
    }
    partition[c].push_back(largest->back());
    largest->pop_back();
  }

  for (auto& client : partition) rng.shuffle(client);
  return partition;
}

Partition iid_partition(std::size_t dataset_size, std::size_t num_clients,
                        std::uint64_t seed) {
  if (num_clients == 0) throw std::invalid_argument{"iid_partition: no clients"};
  util::Rng rng{seed};
  std::vector<std::size_t> order(dataset_size);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  Partition partition(num_clients);
  for (std::size_t i = 0; i < dataset_size; ++i) {
    partition[i % num_clients].push_back(order[i]);
  }
  return partition;
}

Partition shard_partition(const Dataset& dataset, std::size_t num_clients,
                          std::size_t shards_per_client, std::uint64_t seed) {
  if (num_clients == 0 || shards_per_client == 0) {
    throw std::invalid_argument{"shard_partition: invalid arguments"};
  }
  util::Rng rng{seed};
  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&dataset](std::size_t a, std::size_t b) {
    return dataset.label(a) < dataset.label(b);
  });

  const std::size_t shard_count = num_clients * shards_per_client;
  const std::size_t shard_size = dataset.size() / shard_count;
  if (shard_size == 0) {
    throw std::invalid_argument{"shard_partition: more shards than samples"};
  }
  std::vector<std::size_t> shard_order(shard_count);
  std::iota(shard_order.begin(), shard_order.end(), std::size_t{0});
  rng.shuffle(shard_order);

  Partition partition(num_clients);
  for (std::size_t s = 0; s < shard_count; ++s) {
    const std::size_t client = s / shards_per_client;
    const std::size_t shard = shard_order[s];
    const std::size_t begin = shard * shard_size;
    // The last shard absorbs the remainder.
    const std::size_t end = (shard == shard_count - 1) ? dataset.size() : begin + shard_size;
    partition[client].insert(partition[client].end(),
                             order.begin() + static_cast<std::ptrdiff_t>(begin),
                             order.begin() + static_cast<std::ptrdiff_t>(end));
  }
  for (auto& client : partition) rng.shuffle(client);
  return partition;
}

Partition quantity_skew_partition(std::size_t dataset_size, std::size_t num_clients,
                                  double alpha, std::uint64_t seed) {
  if (num_clients == 0) throw std::invalid_argument{"quantity_skew_partition: no clients"};
  if (alpha <= 0.0) {
    throw std::invalid_argument{"quantity_skew_partition: alpha must be > 0"};
  }
  if (dataset_size < num_clients) {
    throw std::invalid_argument{"quantity_skew_partition: fewer samples than clients"};
  }
  util::Rng rng{seed};
  std::vector<std::size_t> order(dataset_size);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);

  // Largest-remainder apportionment of dataset_size samples by Dir(α) shares.
  const std::vector<double> proportions = rng.dirichlet(std::vector<double>(num_clients, alpha));
  std::vector<std::size_t> counts(num_clients, 0);
  std::vector<std::pair<double, std::size_t>> remainders(num_clients);
  std::size_t assigned = 0;
  for (std::size_t c = 0; c < num_clients; ++c) {
    const double exact = proportions[c] * static_cast<double>(dataset_size);
    counts[c] = static_cast<std::size_t>(exact);
    remainders[c] = {exact - static_cast<double>(counts[c]), c};
    assigned += counts[c];
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t k = 0; assigned < dataset_size; ++k, ++assigned) {
    ++counts[remainders[k % num_clients].second];
  }
  // Every client gets at least one sample: steal from the largest count.
  for (std::size_t c = 0; c < num_clients; ++c) {
    if (counts[c] > 0) continue;
    const auto largest = std::max_element(counts.begin(), counts.end());
    --*largest;
    ++counts[c];
  }

  Partition partition(num_clients);
  std::size_t offset = 0;
  for (std::size_t c = 0; c < num_clients; ++c) {
    partition[c].assign(order.begin() + static_cast<std::ptrdiff_t>(offset),
                        order.begin() + static_cast<std::ptrdiff_t>(offset + counts[c]));
    offset += counts[c];
  }
  return partition;
}

Partition make_partition(const Dataset& dataset, const PartitionOptions& options) {
  switch (options.scheme) {
    case PartitionScheme::Iid:
      return iid_partition(dataset.size(), options.num_clients, options.seed);
    case PartitionScheme::Dirichlet:
      return dirichlet_partition(dataset, options.num_clients, options.alpha, options.seed);
    case PartitionScheme::Shard:
      return shard_partition(dataset, options.num_clients, options.shards_per_client,
                             options.seed);
    case PartitionScheme::QuantitySkew:
      return quantity_skew_partition(dataset.size(), options.num_clients, options.alpha,
                                     options.seed);
  }
  throw std::invalid_argument{"make_partition: unknown scheme"};
}

std::vector<std::vector<std::size_t>> partition_class_histogram(const Dataset& dataset,
                                                                const Partition& partition) {
  std::vector<std::vector<std::size_t>> histogram(partition.size());
  for (std::size_t c = 0; c < partition.size(); ++c) {
    histogram[c].assign(dataset.num_classes(), 0);
    for (const std::size_t i : partition[c]) {
      ++histogram[c][static_cast<std::size_t>(dataset.label(i))];
    }
  }
  return histogram;
}

}  // namespace fedguard::data
