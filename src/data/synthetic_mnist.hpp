#pragma once
// Procedural MNIST substitute (see DESIGN.md §1).
//
// Each digit class has a hand-authored stroke skeleton (a set of polylines in
// a unit box). A sample is rendered by applying a random affine perturbation
// (rotation, anisotropic scale, shear, translation), rasterizing the strokes
// with a soft round pen of randomized thickness, and adding per-pixel noise.
// The result is a 10-class image task with the properties the paper's
// evaluation depends on: a small CNN/MLP learns it to >95 % accuracy, a CVAE
// learns class-conditional structure well enough to synthesize usable
// validation data, and visually distinct digit pairs (5/7, 4/2) exist for the
// label-flipping attack.

#include <cstdint>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace fedguard::data {

struct SyntheticMnistOptions {
  std::size_t image_size = 28;       // square images
  double rotation_stddev_deg = 7.0;  // per-sample rotation jitter
  double scale_jitter = 0.12;        // relative scale jitter
  double shear_stddev = 0.08;
  double translate_jitter = 0.06;    // relative to image size
  double thickness_mean = 1.6;       // pen radius in pixels (at 28x28)
  double thickness_jitter = 0.35;
  double pixel_noise_stddev = 0.04;  // additive Gaussian, clamped to [0,1]
};

/// Generate `count` samples with labels drawn uniformly from the 10 classes.
[[nodiscard]] Dataset generate_synthetic_mnist(std::size_t count, std::uint64_t seed,
                                               const SyntheticMnistOptions& options = {});

/// Generate samples with the given per-class counts (class_counts.size() must
/// be 10).
[[nodiscard]] Dataset generate_synthetic_mnist_per_class(
    std::span<const std::size_t> class_counts, std::uint64_t seed,
    const SyntheticMnistOptions& options = {});

/// Render a single digit image (flat row-major, image_size^2 floats in
/// [0,1]). Exposed for tests and for the CVAE quality example.
[[nodiscard]] std::vector<float> render_digit(int digit, util::Rng& rng,
                                              const SyntheticMnistOptions& options = {});

}  // namespace fedguard::data
