#include "data/dataloader.hpp"

#include <algorithm>
#include <stdexcept>

namespace fedguard::data {

DataLoader::DataLoader(const Dataset& dataset, std::vector<std::size_t> indices,
                       std::size_t batch_size, std::uint64_t seed)
    : dataset_{dataset},
      indices_{std::move(indices)},
      batch_size_{batch_size},
      rng_{seed} {
  if (batch_size_ == 0) throw std::invalid_argument{"DataLoader: batch_size must be > 0"};
  for (const std::size_t i : indices_) {
    if (i >= dataset_.size()) throw std::out_of_range{"DataLoader: index out of range"};
  }
  start_epoch();
}

void DataLoader::start_epoch() {
  rng_.shuffle(indices_);
  cursor_ = 0;
}

bool DataLoader::next(Dataset::Batch& batch) {
  if (cursor_ >= indices_.size()) return false;
  const std::size_t n = std::min(batch_size_, indices_.size() - cursor_);
  batch = dataset_.gather(std::span<const std::size_t>{indices_}.subspan(cursor_, n));
  cursor_ += n;
  return true;
}

}  // namespace fedguard::data
