#pragma once
// Dependency-free SVG line charts for the figure-reproduction benches: the
// accuracy-vs-round curves of Fig. 4 and Fig. 5 can be written straight to
// .svg files viewable in any browser.

#include <string>
#include <vector>

namespace fedguard::util {

class LinePlot {
 public:
  LinePlot(std::string title, std::string x_label, std::string y_label);

  /// Add one named series; x is the element index (round number).
  void add_series(std::string name, std::vector<double> values);

  /// Fix the y-axis range (default: auto from the data, padded).
  void set_y_range(double lo, double hi);

  /// Render the chart as a standalone SVG document.
  [[nodiscard]] std::string render(std::size_t width = 720, std::size_t height = 420) const;

  /// Render and write to a file. Throws std::runtime_error on I/O failure.
  void save(const std::string& path, std::size_t width = 720,
            std::size_t height = 420) const;

  [[nodiscard]] std::size_t series_count() const noexcept { return series_.size(); }

 private:
  struct Series {
    std::string name;
    std::vector<double> values;
  };

  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<Series> series_;
  bool fixed_range_ = false;
  double y_lo_ = 0.0;
  double y_hi_ = 1.0;
};

/// Escape <, >, & for SVG text nodes.
[[nodiscard]] std::string svg_escape(const std::string& text);

}  // namespace fedguard::util
