#include "util/svg_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace fedguard::util {

namespace {

constexpr const char* kPalette[] = {"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728",
                                    "#9467bd", "#8c564b", "#e377c2", "#7f7f7f"};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

std::string format_number(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.4g", value);
  return buffer;
}

}  // namespace

std::string svg_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      default: out += c;
    }
  }
  return out;
}

LinePlot::LinePlot(std::string title, std::string x_label, std::string y_label)
    : title_{std::move(title)}, x_label_{std::move(x_label)}, y_label_{std::move(y_label)} {}

void LinePlot::add_series(std::string name, std::vector<double> values) {
  series_.push_back({std::move(name), std::move(values)});
}

void LinePlot::set_y_range(double lo, double hi) {
  if (lo >= hi) throw std::invalid_argument{"LinePlot::set_y_range: lo must be < hi"};
  fixed_range_ = true;
  y_lo_ = lo;
  y_hi_ = hi;
}

std::string LinePlot::render(std::size_t width, std::size_t height) const {
  const double margin_left = 58, margin_right = 150, margin_top = 34, margin_bottom = 44;
  const double plot_w = static_cast<double>(width) - margin_left - margin_right;
  const double plot_h = static_cast<double>(height) - margin_top - margin_bottom;

  // Axis ranges.
  std::size_t max_points = 2;
  double lo = y_lo_, hi = y_hi_;
  if (!fixed_range_) {
    lo = 1e300;
    hi = -1e300;
    for (const auto& series : series_) {
      for (const double v : series.values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    if (lo > hi) {  // no data
      lo = 0.0;
      hi = 1.0;
    }
    const double pad = (hi - lo) * 0.05 + 1e-9;
    lo -= pad;
    hi += pad;
  }
  for (const auto& series : series_) {
    max_points = std::max(max_points, series.values.size());
  }

  auto x_of = [&](std::size_t i) {
    return margin_left + plot_w * static_cast<double>(i) /
                             static_cast<double>(max_points - 1);
  };
  auto y_of = [&](double v) {
    return margin_top + plot_h * (1.0 - (v - lo) / (hi - lo));
  };

  std::string svg;
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%zu\" height=\"%zu\" "
                "viewBox=\"0 0 %zu %zu\" font-family=\"sans-serif\">\n",
                width, height, width, height);
  svg += buffer;
  svg += "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  // Title + axis labels.
  std::snprintf(buffer, sizeof(buffer),
                "<text x=\"%zu\" y=\"20\" text-anchor=\"middle\" font-size=\"14\">%s</text>\n",
                width / 2, svg_escape(title_).c_str());
  svg += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "<text x=\"%zu\" y=\"%zu\" text-anchor=\"middle\" font-size=\"12\">%s</text>\n",
                width / 2, height - 8, svg_escape(x_label_).c_str());
  svg += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "<text x=\"14\" y=\"%zu\" text-anchor=\"middle\" font-size=\"12\" "
                "transform=\"rotate(-90 14 %zu)\">%s</text>\n",
                height / 2, height / 2, svg_escape(y_label_).c_str());
  svg += buffer;

  // Gridlines + y ticks.
  for (int tick = 0; tick <= 5; ++tick) {
    const double value = lo + (hi - lo) * tick / 5.0;
    const double y = y_of(value);
    std::snprintf(buffer, sizeof(buffer),
                  "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
                  "stroke=\"#dddddd\"/>\n",
                  margin_left, y, margin_left + plot_w, y);
    svg += buffer;
    std::snprintf(buffer, sizeof(buffer),
                  "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\" font-size=\"10\" "
                  "dy=\"3\">%s</text>\n",
                  margin_left - 6, y, format_number(value).c_str());
    svg += buffer;
  }
  // x ticks (at most 10).
  const std::size_t x_step = std::max<std::size_t>(1, (max_points - 1) / 10);
  for (std::size_t i = 0; i < max_points; i += x_step) {
    std::snprintf(buffer, sizeof(buffer),
                  "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" "
                  "font-size=\"10\">%zu</text>\n",
                  x_of(i), margin_top + plot_h + 14, i);
    svg += buffer;
  }
  // Axes.
  std::snprintf(buffer, sizeof(buffer),
                "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"none\" "
                "stroke=\"#333333\"/>\n",
                margin_left, margin_top, plot_w, plot_h);
  svg += buffer;

  // Series polylines + legend.
  for (std::size_t s = 0; s < series_.size(); ++s) {
    const auto& series = series_[s];
    const char* color = kPalette[s % kPaletteSize];
    if (series.values.size() >= 2) {
      svg += "<polyline fill=\"none\" stroke-width=\"1.8\" stroke=\"";
      svg += color;
      svg += "\" points=\"";
      for (std::size_t i = 0; i < series.values.size(); ++i) {
        std::snprintf(buffer, sizeof(buffer), "%.1f,%.1f ", x_of(i),
                      y_of(series.values[i]));
        svg += buffer;
      }
      svg += "\"/>\n";
    }
    const double legend_y = margin_top + 16.0 * static_cast<double>(s);
    std::snprintf(buffer, sizeof(buffer),
                  "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"%s\" "
                  "stroke-width=\"2\"/>\n",
                  margin_left + plot_w + 10, legend_y, margin_left + plot_w + 30, legend_y,
                  color);
    svg += buffer;
    std::snprintf(buffer, sizeof(buffer),
                  "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" dy=\"3\">%s</text>\n",
                  margin_left + plot_w + 34, legend_y, svg_escape(series.name).c_str());
    svg += buffer;
  }

  svg += "</svg>\n";
  return svg;
}

void LinePlot::save(const std::string& path, std::size_t width, std::size_t height) const {
  std::ofstream file{path, std::ios::trunc};
  if (!file) throw std::runtime_error{"LinePlot::save: cannot open " + path};
  file << render(width, height);
  if (!file) throw std::runtime_error{"LinePlot::save: write failed for " + path};
}

}  // namespace fedguard::util
