#pragma once
// Small descriptive-statistics helpers used by the experiment reporters
// (Table IV averages, trailing-window statistics) and by the defenses.

#include <cstddef>
#include <span>
#include <vector>

namespace fedguard::util {

/// Arithmetic mean; returns 0 for an empty range.
[[nodiscard]] double mean(std::span<const double> values) noexcept;
[[nodiscard]] float mean(std::span<const float> values) noexcept;

/// Sample standard deviation (n-1 denominator); returns 0 for n < 2.
[[nodiscard]] double stddev(std::span<const double> values) noexcept;

/// Population variance (n denominator); returns 0 for empty.
[[nodiscard]] double variance(std::span<const double> values) noexcept;

/// Median (copies & partially sorts); returns 0 for empty.
[[nodiscard]] double median(std::span<const double> values);
[[nodiscard]] float median(std::span<const float> values);

/// q-quantile with linear interpolation, q in [0,1]; returns 0 for empty.
[[nodiscard]] double quantile(std::span<const double> values, double q);

[[nodiscard]] double min_value(std::span<const double> values) noexcept;
[[nodiscard]] double max_value(std::span<const double> values) noexcept;

/// Summary over the trailing `window` entries of a series (Table IV uses the
/// last 40 rounds). If the series is shorter than `window`, uses all of it.
struct TrailingStats {
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t count = 0;
};
[[nodiscard]] TrailingStats trailing_stats(std::span<const double> series, std::size_t window);

/// Euclidean norm of a vector.
[[nodiscard]] double l2_norm(std::span<const float> v) noexcept;
/// Euclidean distance between equal-length vectors.
[[nodiscard]] double l2_distance(std::span<const float> a, std::span<const float> b) noexcept;
/// Squared Euclidean distance between equal-length vectors.
[[nodiscard]] double squared_distance(std::span<const float> a, std::span<const float> b) noexcept;
/// Dot product of equal-length vectors (double accumulator).
[[nodiscard]] double dot(std::span<const float> a, std::span<const float> b) noexcept;
/// Cosine similarity; returns 0 when either vector is zero.
[[nodiscard]] double cosine_similarity(std::span<const float> a, std::span<const float> b) noexcept;

}  // namespace fedguard::util
