#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace fedguard::util {

double mean(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (const double v : values) total += v;
  return total / static_cast<double>(values.size());
}

float mean(std::span<const float> values) noexcept {
  if (values.empty()) return 0.0f;
  double total = 0.0;
  for (const float v : values) total += v;
  return static_cast<float>(total / static_cast<double>(values.size()));
}

double variance(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  const double m = mean(values);
  double total = 0.0;
  for (const double v : values) total += (v - m) * (v - m);
  return total / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) noexcept {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double total = 0.0;
  for (const double v : values) total += (v - m) * (v - m);
  return std::sqrt(total / static_cast<double>(values.size() - 1));
}

namespace {
template <typename T>
double median_impl(std::span<const T> values) {
  if (values.empty()) return 0.0;
  std::vector<T> copy(values.begin(), values.end());
  const std::size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid), copy.end());
  if (copy.size() % 2 == 1) return static_cast<double>(copy[mid]);
  const auto upper = static_cast<double>(copy[mid]);
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid) - 1, copy.end());
  return 0.5 * (static_cast<double>(copy[mid - 1]) + upper);
}
}  // namespace

double median(std::span<const double> values) { return median_impl(values); }
float median(std::span<const float> values) { return static_cast<float>(median_impl(values)); }

double quantile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  assert(q >= 0.0 && q <= 1.0);
  std::vector<double> copy(values.begin(), values.end());
  std::sort(copy.begin(), copy.end());
  const double pos = q * static_cast<double>(copy.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, copy.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return copy[lo] * (1.0 - frac) + copy[hi] * frac;
}

double min_value(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

TrailingStats trailing_stats(std::span<const double> series, std::size_t window) {
  TrailingStats out;
  if (series.empty()) return out;
  const std::size_t count = std::min(window, series.size());
  const auto tail = series.subspan(series.size() - count, count);
  out.mean = mean(tail);
  out.stddev = stddev(tail);
  out.count = count;
  return out;
}

double l2_norm(std::span<const float> v) noexcept {
  double total = 0.0;
  for (const float x : v) total += static_cast<double>(x) * static_cast<double>(x);
  return std::sqrt(total);
}

double squared_distance(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    total += d * d;
  }
  return total;
}

double l2_distance(std::span<const float> a, std::span<const float> b) noexcept {
  return std::sqrt(squared_distance(a, b));
}

double dot(std::span<const float> a, std::span<const float> b) noexcept {
  assert(a.size() == b.size());
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    total += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return total;
}

double cosine_similarity(std::span<const float> a, std::span<const float> b) noexcept {
  const double na = l2_norm(a);
  const double nb = l2_norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot(a, b) / (na * nb);
}

}  // namespace fedguard::util
