#include "util/check.hpp"

#include <cmath>

namespace fedguard::util {

bool all_finite(std::span<const float> values) noexcept {
  for (const float v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

bool all_finite(std::span<const double> values) noexcept {
  for (const double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

void check_failed(const char* expression, const char* file, int line,
                  const std::string& detail) {
  std::string message{file};
  message += ':';
  message += std::to_string(line);
  message += ": check failed: ";
  message += expression;
  if (!detail.empty()) {
    message += " (";
    message += detail;
    message += ')';
  }
  throw CheckError{message};
}

}  // namespace fedguard::util
