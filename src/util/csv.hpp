#pragma once
// CSV emission for experiment series (per-round accuracy curves etc.).
// Kept deliberately simple: numeric and string cells, RFC-4180 quoting for
// strings containing separators.

#include <fstream>
#include <string>
#include <vector>

namespace fedguard::util {

/// Streaming CSV writer; one instance per output file.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Append one row; cell count must match the header.
  void write_row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with 6 significant digits.
  static std::string cell(double value);
  static std::string cell(std::size_t value);
  static std::string cell(int value);

 private:
  std::ofstream file_;
  std::size_t columns_;
};

/// Escape a single cell per RFC 4180 (quote if it contains , " or newline).
[[nodiscard]] std::string csv_escape(const std::string& cell);

}  // namespace fedguard::util
