#include "util/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace fedguard::util {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header)
    : file_{path, std::ios::trunc}, columns_{header.size()} {
  if (!file_) throw std::runtime_error{"CsvWriter: cannot open " + path};
  write_row(header);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::invalid_argument{"CsvWriter: row width mismatch"};
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) file_ << ',';
    file_ << csv_escape(cells[i]);
  }
  file_ << '\n';
}

std::string CsvWriter::cell(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}
std::string CsvWriter::cell(std::size_t value) { return std::to_string(value); }
std::string CsvWriter::cell(int value) { return std::to_string(value); }

}  // namespace fedguard::util
