#include "util/serialize.hpp"

#include <cstring>
#include <fstream>

namespace fedguard::util {

namespace {
template <typename T>
void append_raw(std::vector<std::byte>& buffer, T value) {
  const auto old = buffer.size();
  buffer.resize(old + sizeof(T));
  std::memcpy(buffer.data() + old, &value, sizeof(T));
}
}  // namespace

void ByteWriter::write_u32(std::uint32_t value) { append_raw(buffer_, value); }
void ByteWriter::write_u64(std::uint64_t value) { append_raw(buffer_, value); }
void ByteWriter::write_f32(float value) { append_raw(buffer_, value); }

void ByteWriter::write_f32_span(std::span<const float> values) {
  write_u64(values.size());
  const auto old = buffer_.size();
  buffer_.resize(old + values.size_bytes());
  std::memcpy(buffer_.data() + old, values.data(), values.size_bytes());
}

void ByteWriter::write_string(const std::string& value) {
  write_u64(value.size());
  const auto old = buffer_.size();
  buffer_.resize(old + value.size());
  std::memcpy(buffer_.data() + old, value.data(), value.size());
}

void ByteReader::require(std::size_t count) const {
  if (offset_ + count > data_.size()) {
    throw std::out_of_range{"ByteReader: buffer underrun"};
  }
}

std::uint32_t ByteReader::read_u32() {
  require(sizeof(std::uint32_t));
  std::uint32_t value = 0;
  std::memcpy(&value, data_.data() + offset_, sizeof(value));
  offset_ += sizeof(value);
  return value;
}

std::uint64_t ByteReader::read_u64() {
  require(sizeof(std::uint64_t));
  std::uint64_t value = 0;
  std::memcpy(&value, data_.data() + offset_, sizeof(value));
  offset_ += sizeof(value);
  return value;
}

float ByteReader::read_f32() {
  require(sizeof(float));
  float value = 0;
  std::memcpy(&value, data_.data() + offset_, sizeof(value));
  offset_ += sizeof(value);
  return value;
}

std::vector<float> ByteReader::read_f32_vector(std::size_t count) {
  require(count * sizeof(float));
  std::vector<float> out(count);
  std::memcpy(out.data(), data_.data() + offset_, count * sizeof(float));
  offset_ += count * sizeof(float);
  return out;
}

std::string ByteReader::read_string() {
  const auto length = static_cast<std::size_t>(read_u64());
  require(length);
  std::string out(length, '\0');
  std::memcpy(out.data(), data_.data() + offset_, length);
  offset_ += length;
  return out;
}

void save_f32_vector(const std::string& path, std::span<const float> values) {
  std::ofstream file{path, std::ios::binary | std::ios::trunc};
  if (!file) throw std::runtime_error{"save_f32_vector: cannot open " + path};
  const std::uint64_t count = values.size();
  file.write(reinterpret_cast<const char*>(&count), sizeof(count));
  file.write(reinterpret_cast<const char*>(values.data()),
             static_cast<std::streamsize>(values.size_bytes()));
  if (!file) throw std::runtime_error{"save_f32_vector: write failed for " + path};
}

std::vector<float> load_f32_vector(const std::string& path) {
  std::ifstream file{path, std::ios::binary};
  if (!file) throw std::runtime_error{"load_f32_vector: cannot open " + path};
  std::uint64_t count = 0;
  file.read(reinterpret_cast<char*>(&count), sizeof(count));
  std::vector<float> out(count);
  file.read(reinterpret_cast<char*>(out.data()),
            static_cast<std::streamsize>(count * sizeof(float)));
  if (!file) throw std::runtime_error{"load_f32_vector: truncated file " + path};
  return out;
}

}  // namespace fedguard::util
