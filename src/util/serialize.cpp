#include "util/serialize.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <ostream>

namespace fedguard::util {

namespace {
template <typename T>
void append_raw(std::vector<std::byte>& buffer, T value) {
  const auto old = buffer.size();
  buffer.resize(old + sizeof(T));
  store_trivial(buffer.data() + old, value);
}
}  // namespace

void write_bytes(std::ostream& out, std::span<const std::byte> bytes) {
  if (bytes.empty()) return;  // empty span has a null data(); never pass it on
  // The one sanctioned byte-pointer cast: char aliases anything.
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

bool read_bytes(std::istream& in, std::span<std::byte> bytes) {
  if (bytes.empty()) return static_cast<bool>(in);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(in);
}

void ByteWriter::write_u32(std::uint32_t value) { append_raw(buffer_, value); }
void ByteWriter::write_u64(std::uint64_t value) { append_raw(buffer_, value); }
void ByteWriter::write_f32(float value) { append_raw(buffer_, value); }

void ByteWriter::write_f32_span(std::span<const float> values) {
  write_u64(values.size());
  if (values.empty()) return;  // empty span has a null data(); memcpy is nonnull
  const auto old = buffer_.size();
  buffer_.resize(old + values.size_bytes());
  std::memcpy(buffer_.data() + old, values.data(), values.size_bytes());
}

void ByteWriter::write_string(const std::string& value) {
  write_u64(value.size());
  if (value.empty()) return;
  const auto old = buffer_.size();
  buffer_.resize(old + value.size());
  std::memcpy(buffer_.data() + old, value.data(), value.size());
}

void ByteReader::require(std::size_t count) const {
  if (offset_ + count > data_.size()) {
    throw std::out_of_range{"ByteReader: buffer underrun"};
  }
}

std::uint32_t ByteReader::read_u32() {
  require(sizeof(std::uint32_t));
  const auto value = load_trivial<std::uint32_t>(data_.data() + offset_);
  offset_ += sizeof(value);
  return value;
}

std::uint64_t ByteReader::read_u64() {
  require(sizeof(std::uint64_t));
  const auto value = load_trivial<std::uint64_t>(data_.data() + offset_);
  offset_ += sizeof(value);
  return value;
}

float ByteReader::read_f32() {
  require(sizeof(float));
  const auto value = load_trivial<float>(data_.data() + offset_);
  offset_ += sizeof(value);
  return value;
}

std::vector<float> ByteReader::read_f32_vector(std::size_t count) {
  if (count == 0) return {};
  require(count * sizeof(float));
  std::vector<float> out(count);
  std::memcpy(out.data(), data_.data() + offset_, count * sizeof(float));
  offset_ += count * sizeof(float);
  return out;
}

void ByteReader::read_f32_into(std::span<float> out) {
  if (out.empty()) return;
  require(out.size() * sizeof(float));
  std::memcpy(out.data(), data_.data() + offset_, out.size() * sizeof(float));
  offset_ += out.size() * sizeof(float);
}

std::string ByteReader::read_string() {
  const auto length = static_cast<std::size_t>(read_u64());
  if (length == 0) return {};
  require(length);
  std::string out(length, '\0');
  std::memcpy(out.data(), data_.data() + offset_, length);
  offset_ += length;
  return out;
}

void save_f32_vector(const std::string& path, std::span<const float> values) {
  std::ofstream file{path, std::ios::binary | std::ios::trunc};
  if (!file) throw std::runtime_error{"save_f32_vector: cannot open " + path};
  std::vector<std::byte> buffer(sizeof(std::uint64_t) + values.size_bytes());
  store_trivial(buffer.data(), static_cast<std::uint64_t>(values.size()));
  if (!values.empty()) {
    std::memcpy(buffer.data() + sizeof(std::uint64_t), values.data(), values.size_bytes());
  }
  write_bytes(file, buffer);
  if (!file) throw std::runtime_error{"save_f32_vector: write failed for " + path};
}

std::vector<float> load_f32_vector(const std::string& path) {
  std::ifstream file{path, std::ios::binary};
  if (!file) throw std::runtime_error{"load_f32_vector: cannot open " + path};
  std::array<std::byte, sizeof(std::uint64_t)> header{};
  if (!read_bytes(file, header)) {
    throw std::runtime_error{"load_f32_vector: truncated file " + path};
  }
  const auto count = static_cast<std::size_t>(load_trivial<std::uint64_t>(header.data()));
  std::vector<std::byte> payload(count * sizeof(float));
  if (!read_bytes(file, payload)) {
    throw std::runtime_error{"load_f32_vector: truncated file " + path};
  }
  std::vector<float> out(count);
  if (count != 0) std::memcpy(out.data(), payload.data(), payload.size());
  return out;
}

}  // namespace fedguard::util
