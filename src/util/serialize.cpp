#include "util/serialize.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <ostream>

namespace fedguard::util {

namespace {
template <typename T>
void append_raw(std::vector<std::byte>& buffer, T value) {
  const auto old = buffer.size();
  buffer.resize(old + sizeof(T));
  store_trivial(buffer.data() + old, value);
}

// Per-chunk affine parameters: value ~= offset + scale * code, code in 0..255.
// The scale is nudged up to the next representable float when the double
// quotient rounds down, so (max - offset) / scale <= 255 holds exactly and
// the encoder never clamps — keeping the max dequantization error <= scale/2.
struct Q8ChunkParams {
  float scale;
  float offset;
};

Q8ChunkParams q8_chunk_params(std::span<const float> chunk) noexcept {
  float lo = std::numeric_limits<float>::infinity();
  float hi = -std::numeric_limits<float>::infinity();
  for (const float v : chunk) {
    if (!std::isfinite(v)) {
      // Poison the whole chunk: scale NaN makes every element dequantize to
      // NaN, which the aggregation-boundary finite check rejects — a client
      // cannot launder inf/NaN through quantization.
      return {std::numeric_limits<float>::quiet_NaN(), 0.0F};
    }
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = static_cast<double>(hi) - static_cast<double>(lo);
  if (range == 0.0) return {0.0F, lo};  // constant chunk decodes exactly
  auto scale = static_cast<float>(range / 255.0);
  if (static_cast<double>(scale) * 255.0 < range) {
    scale = std::nextafter(scale, std::numeric_limits<float>::infinity());
  }
  return {scale, lo};
}

std::uint8_t q8_encode(float value, const Q8ChunkParams& params) noexcept {
  if (params.scale == 0.0F) return 0;
  const double q = std::nearbyint((static_cast<double>(value) - static_cast<double>(params.offset)) /
                                  static_cast<double>(params.scale));
  return static_cast<std::uint8_t>(std::clamp(q, 0.0, 255.0));
}

float q8_decode(std::uint8_t code, const Q8ChunkParams& params) noexcept {
  return static_cast<float>(static_cast<double>(params.offset) +
                            static_cast<double>(params.scale) * static_cast<double>(code));
}
}  // namespace

std::string_view to_string(WireCodec codec) noexcept {
  switch (codec) {
    case WireCodec::Q8: return "q8";
    case WireCodec::Fp16: return "fp16";
    case WireCodec::Fp32: break;
  }
  return "fp32";
}

bool parse_wire_codec(std::string_view text, WireCodec& out) noexcept {
  if (text == "fp32") {
    out = WireCodec::Fp32;
  } else if (text == "q8") {
    out = WireCodec::Q8;
  } else if (text == "fp16") {
    out = WireCodec::Fp16;
  } else {
    return false;
  }
  return true;
}

std::uint16_t f32_to_f16_bits(float value) noexcept {
  std::uint32_t f = 0;
  std::memcpy(&f, &value, sizeof(f));
  const auto sign = static_cast<std::uint16_t>((f >> 16U) & 0x8000U);
  const std::uint32_t exp = (f >> 23U) & 0xFFU;
  const std::uint32_t mant = f & 0x7FFFFFU;
  if (exp == 0xFFU) {  // inf / NaN (NaN payloads collapse to a quiet NaN)
    return static_cast<std::uint16_t>(sign | 0x7C00U | (mant != 0 ? 0x0200U : 0U));
  }
  const int half_exp = static_cast<int>(exp) - 127 + 15;
  if (half_exp >= 0x1F) return static_cast<std::uint16_t>(sign | 0x7C00U);  // overflow -> inf
  if (half_exp <= 0) {
    if (half_exp < -10) return sign;  // underflows past subnormals -> signed zero
    // Subnormal half: shift the (implicit-1) mantissa into place, rounding
    // to nearest-even; a carry out of the mantissa lands in exponent 1,
    // which is exactly the right normalized value.
    const std::uint32_t full = mant | 0x800000U;
    const auto shift = static_cast<std::uint32_t>(14 - half_exp);  // 14..24
    std::uint32_t half = full >> shift;
    const std::uint32_t rem = full & ((1U << shift) - 1U);
    const std::uint32_t halfway = 1U << (shift - 1U);
    if (rem > halfway || (rem == halfway && (half & 1U) != 0)) ++half;
    return static_cast<std::uint16_t>(sign | half);
  }
  auto half = static_cast<std::uint32_t>(half_exp << 10U) | (mant >> 13U);
  const std::uint32_t rem = mant & 0x1FFFU;
  // Round to nearest-even; a mantissa carry bumps the exponent (and rounds
  // the largest finite halves up to inf, as IEEE requires).
  if (rem > 0x1000U || (rem == 0x1000U && (half & 1U) != 0)) ++half;
  return static_cast<std::uint16_t>(sign | half);
}

float f16_bits_to_f32(std::uint16_t bits) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000U) << 16U;
  std::uint32_t exp = (bits >> 10U) & 0x1FU;
  std::uint32_t mant = bits & 0x3FFU;
  std::uint32_t f = 0;
  if (exp == 0x1FU) {
    f = sign | 0x7F800000U | (mant << 13U);
  } else if (exp != 0) {
    f = sign | ((exp + 112U) << 23U) | (mant << 13U);
  } else if (mant == 0) {
    f = sign;
  } else {
    // Normalize a half subnormal: every half value is representable in f32.
    exp = 113U;
    while ((mant & 0x400U) == 0) {
      mant <<= 1U;
      --exp;
    }
    f = sign | (exp << 23U) | ((mant & 0x3FFU) << 13U);
  }
  float value = 0.0F;
  std::memcpy(&value, &f, sizeof(value));
  return value;
}

void write_bytes(std::ostream& out, std::span<const std::byte> bytes) {
  if (bytes.empty()) return;  // empty span has a null data(); never pass it on
  // The one sanctioned byte-pointer cast: char aliases anything.
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

bool read_bytes(std::istream& in, std::span<std::byte> bytes) {
  if (bytes.empty()) return static_cast<bool>(in);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(in);
}

void ByteWriter::write_u32(std::uint32_t value) { append_raw(buffer_, value); }
void ByteWriter::write_u64(std::uint64_t value) { append_raw(buffer_, value); }
void ByteWriter::write_f32(float value) { append_raw(buffer_, value); }

void ByteWriter::write_f32_span(std::span<const float> values) {
  write_u64(values.size());
  if (values.empty()) return;  // empty span has a null data(); memcpy is nonnull
  const auto old = buffer_.size();
  buffer_.resize(old + values.size_bytes());
  std::memcpy(buffer_.data() + old, values.data(), values.size_bytes());
}

void ByteWriter::write_q8_span(std::span<const float> values, std::size_t chunk_size) {
  if (chunk_size == 0) {
    throw std::invalid_argument{"write_q8_span: chunk_size must be positive"};
  }
  write_u64(values.size());
  write_u32(static_cast<std::uint32_t>(chunk_size));
  for (std::size_t base = 0; base < values.size(); base += chunk_size) {
    const std::span<const float> chunk =
        values.subspan(base, std::min(chunk_size, values.size() - base));
    const Q8ChunkParams params = q8_chunk_params(chunk);
    write_f32(params.scale);
    write_f32(params.offset);
    const auto old = buffer_.size();
    buffer_.resize(old + chunk.size());
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      buffer_[old + i] = static_cast<std::byte>(
          std::isfinite(params.scale) ? q8_encode(chunk[i], params) : std::uint8_t{0});
    }
  }
}

void ByteWriter::write_f16_span(std::span<const float> values) {
  write_u64(values.size());
  const auto old = buffer_.size();
  buffer_.resize(old + values.size() * sizeof(std::uint16_t));
  for (std::size_t i = 0; i < values.size(); ++i) {
    store_trivial(buffer_.data() + old + i * sizeof(std::uint16_t), f32_to_f16_bits(values[i]));
  }
}

void ByteWriter::write_string(const std::string& value) {
  write_u64(value.size());
  if (value.empty()) return;
  const auto old = buffer_.size();
  buffer_.resize(old + value.size());
  std::memcpy(buffer_.data() + old, value.data(), value.size());
}

void ByteReader::require(std::size_t count) const {
  if (offset_ + count > data_.size()) {
    throw std::out_of_range{"ByteReader: buffer underrun"};
  }
}

std::uint32_t ByteReader::read_u32() {
  require(sizeof(std::uint32_t));
  const auto value = load_trivial<std::uint32_t>(data_.data() + offset_);
  offset_ += sizeof(value);
  return value;
}

std::uint64_t ByteReader::read_u64() {
  require(sizeof(std::uint64_t));
  const auto value = load_trivial<std::uint64_t>(data_.data() + offset_);
  offset_ += sizeof(value);
  return value;
}

float ByteReader::read_f32() {
  require(sizeof(float));
  const auto value = load_trivial<float>(data_.data() + offset_);
  offset_ += sizeof(value);
  return value;
}

std::vector<float> ByteReader::read_f32_vector(std::size_t count) {
  if (count == 0) return {};
  require(count * sizeof(float));
  std::vector<float> out(count);
  std::memcpy(out.data(), data_.data() + offset_, count * sizeof(float));
  offset_ += count * sizeof(float);
  return out;
}

void ByteReader::read_f32_into(std::span<float> out) {
  if (out.empty()) return;
  require(out.size() * sizeof(float));
  std::memcpy(out.data(), data_.data() + offset_, out.size() * sizeof(float));
  offset_ += out.size() * sizeof(float);
}

void ByteReader::read_q8_into(std::span<float> out) {
  const auto chunk_size = static_cast<std::size_t>(read_u32());
  if (out.empty()) return;
  if (chunk_size == 0) {
    throw std::out_of_range{"ByteReader: q8 payload with zero chunk size"};
  }
  for (std::size_t base = 0; base < out.size(); base += chunk_size) {
    const std::size_t len = std::min(chunk_size, out.size() - base);
    Q8ChunkParams params{};
    params.scale = read_f32();
    params.offset = read_f32();
    require(len);
    for (std::size_t i = 0; i < len; ++i) {
      out[base + i] = q8_decode(std::to_integer<std::uint8_t>(data_[offset_ + i]), params);
    }
    offset_ += len;
  }
}

void ByteReader::read_f16_into(std::span<float> out) {
  if (out.empty()) return;
  require(out.size() * sizeof(std::uint16_t));
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = f16_bits_to_f32(
        load_trivial<std::uint16_t>(data_.data() + offset_ + i * sizeof(std::uint16_t)));
  }
  offset_ += out.size() * sizeof(std::uint16_t);
}

std::string ByteReader::read_string() {
  const auto length = static_cast<std::size_t>(read_u64());
  if (length == 0) return {};
  require(length);
  std::string out(length, '\0');
  std::memcpy(out.data(), data_.data() + offset_, length);
  offset_ += length;
  return out;
}

void quantize_roundtrip_q8(std::span<float> values, std::size_t chunk_size) {
  if (chunk_size == 0) {
    throw std::invalid_argument{"quantize_roundtrip_q8: chunk_size must be positive"};
  }
  for (std::size_t base = 0; base < values.size(); base += chunk_size) {
    const std::span<float> chunk =
        values.subspan(base, std::min(chunk_size, values.size() - base));
    const Q8ChunkParams params = q8_chunk_params(chunk);
    for (float& v : chunk) {
      v = q8_decode(std::isfinite(params.scale) ? q8_encode(v, params) : std::uint8_t{0},
                    params);
    }
  }
}

void quantize_roundtrip_f16(std::span<float> values) noexcept {
  for (float& v : values) v = f16_bits_to_f32(f32_to_f16_bits(v));
}

void quantize_roundtrip(WireCodec codec, std::span<float> values, std::size_t chunk_size) {
  switch (codec) {
    case WireCodec::Q8: quantize_roundtrip_q8(values, chunk_size); break;
    case WireCodec::Fp16: quantize_roundtrip_f16(values); break;
    case WireCodec::Fp32: break;
  }
}

void save_f32_vector(const std::string& path, std::span<const float> values) {
  std::ofstream file{path, std::ios::binary | std::ios::trunc};
  if (!file) throw std::runtime_error{"save_f32_vector: cannot open " + path};
  std::vector<std::byte> buffer(sizeof(std::uint64_t) + values.size_bytes());
  store_trivial(buffer.data(), static_cast<std::uint64_t>(values.size()));
  if (!values.empty()) {
    std::memcpy(buffer.data() + sizeof(std::uint64_t), values.data(), values.size_bytes());
  }
  write_bytes(file, buffer);
  if (!file) throw std::runtime_error{"save_f32_vector: write failed for " + path};
}

std::vector<float> load_f32_vector(const std::string& path) {
  std::ifstream file{path, std::ios::binary};
  if (!file) throw std::runtime_error{"load_f32_vector: cannot open " + path};
  std::array<std::byte, sizeof(std::uint64_t)> header{};
  if (!read_bytes(file, header)) {
    throw std::runtime_error{"load_f32_vector: truncated file " + path};
  }
  const auto count = static_cast<std::size_t>(load_trivial<std::uint64_t>(header.data()));
  std::vector<std::byte> payload(count * sizeof(float));
  if (!read_bytes(file, payload)) {
    throw std::runtime_error{"load_f32_vector: truncated file " + path};
  }
  std::vector<float> out(count);
  if (count != 0) std::memcpy(out.data(), payload.data(), payload.size());
  return out;
}

}  // namespace fedguard::util
