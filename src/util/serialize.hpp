#pragma once
// Little-endian binary serialization primitives used for model parameter
// transfer and checkpointing. The traffic meter charges transfers at exactly
// the size these writers produce.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace fedguard::util {

// ---- Wire codecs --------------------------------------------------------------
// Encodings for float spans crossing the wire. Fp32 is the exact baseline;
// Q8 is a per-chunk affine uint8 quantization (scale + offset per chunk,
// max dequantization error <= scale/2); Fp16 is IEEE binary16 truncation
// with round-to-nearest-even. The numeric values are the on-wire tags.

enum class WireCodec : std::uint8_t { Fp32 = 0, Q8 = 1, Fp16 = 2 };

[[nodiscard]] std::string_view to_string(WireCodec codec) noexcept;
/// Accepts "fp32", "q8", "fp16"; returns false (out untouched) otherwise.
[[nodiscard]] bool parse_wire_codec(std::string_view text, WireCodec& out) noexcept;

/// Default elements per q8 chunk: small enough that one outlier only inflates
/// the scale of its own 256-value neighbourhood, large enough that the 8-byte
/// per-chunk header stays ~3% overhead.
inline constexpr std::size_t kDefaultQ8ChunkSize = 256;

// ---- memcpy-based load/store --------------------------------------------------
// Alignment- and aliasing-safe framing primitives: every place that used to
// reinterpret_cast a buffer pointer to a value type (UB when misaligned, and
// flagged by UBSan) goes through these instead.

/// Copy a trivially copyable value out of a byte buffer (must hold sizeof(T)).
template <typename T>
  requires std::is_trivially_copyable_v<T>
[[nodiscard]] T load_trivial(const std::byte* source) noexcept {
  T value;
  std::memcpy(&value, source, sizeof(T));
  return value;
}

/// Copy a trivially copyable value into a byte buffer (must hold sizeof(T)).
template <typename T>
  requires std::is_trivially_copyable_v<T>
void store_trivial(std::byte* target, const T& value) noexcept {
  std::memcpy(target, &value, sizeof(T));
}

// ---- iostream bridging --------------------------------------------------------
// std::iostream speaks char*; the single sanctioned byte-pointer cast in the
// library lives inside these two helpers (std::byte <-> char aliasing is
// always valid), so no other translation unit needs a reinterpret_cast for
// file framing.

/// Write a byte span to a binary stream.
void write_bytes(std::ostream& out, std::span<const std::byte> bytes);
/// Read exactly `bytes.size()` bytes; returns false on short read / error.
[[nodiscard]] bool read_bytes(std::istream& in, std::span<std::byte> bytes);

/// Growable binary output buffer.
class ByteWriter {
 public:
  void write_u32(std::uint32_t value);
  void write_u64(std::uint64_t value);
  void write_f32(float value);
  void write_f32_span(std::span<const float> values);
  /// Per-chunk affine uint8 quantization: u64 count, u32 chunk size, then per
  /// chunk [f32 scale][f32 offset][chunk u8 codes] with value ~= offset +
  /// scale * code. A chunk containing any non-finite value gets scale = NaN
  /// (every element dequantizes to NaN, so the aggregation-boundary finite
  /// check still fires); a constant chunk gets scale = 0 and decodes exactly.
  void write_q8_span(std::span<const float> values,
                     std::size_t chunk_size = kDefaultQ8ChunkSize);
  /// IEEE binary16: u64 count then count u16 half-floats (round-to-nearest-
  /// even, overflow to inf, NaN preserved).
  void write_f16_span(std::span<const float> values);
  void write_string(const std::string& value);

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept { return buffer_; }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::vector<std::byte> buffer_;
};

/// Sequential reader over a byte span. Throws std::out_of_range on underrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) noexcept : data_{data} {}

  [[nodiscard]] std::uint32_t read_u32();
  [[nodiscard]] std::uint64_t read_u64();
  [[nodiscard]] float read_f32();
  [[nodiscard]] std::vector<float> read_f32_vector(std::size_t count);
  /// Deserialize out.size() floats directly into `out` (zero-copy form of
  /// read_f32_vector for pre-sized destinations like arena rows).
  void read_f32_into(std::span<float> out);
  /// Dequantize a write_q8_span payload (sans the u64 count, which the caller
  /// reads to size `out`) directly into `out` — the quantized twin of
  /// read_f32_into, so arena rows fill without an intermediate buffer.
  void read_q8_into(std::span<float> out);
  /// Decode a write_f16_span payload (sans the u64 count) into `out`.
  void read_f16_into(std::span<float> out);
  [[nodiscard]] std::string read_string();

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - offset_; }
  [[nodiscard]] bool exhausted() const noexcept { return offset_ == data_.size(); }

 private:
  void require(std::size_t count) const;

  std::span<const std::byte> data_;
  std::size_t offset_ = 0;
};

/// Serialized size in bytes of a float vector written via write_f32_span,
/// including the u64 length prefix.
[[nodiscard]] constexpr std::size_t f32_vector_wire_size(std::size_t count) noexcept {
  return sizeof(std::uint64_t) + count * sizeof(float);
}

/// Serialized size of write_q8_span: u64 count + u32 chunk size + one
/// (scale, offset) float pair per chunk + one byte per element.
[[nodiscard]] constexpr std::size_t q8_span_wire_size(std::size_t count,
                                                      std::size_t chunk_size) noexcept {
  const std::size_t chunks = chunk_size == 0 ? 0 : (count + chunk_size - 1) / chunk_size;
  return sizeof(std::uint64_t) + sizeof(std::uint32_t) + chunks * 2 * sizeof(float) + count;
}

/// Serialized size of write_f16_span: u64 count + two bytes per element.
[[nodiscard]] constexpr std::size_t f16_span_wire_size(std::size_t count) noexcept {
  return sizeof(std::uint64_t) + count * sizeof(std::uint16_t);
}

/// Serialized size of a float span under `codec` (including length prefix).
[[nodiscard]] constexpr std::size_t codec_span_wire_size(WireCodec codec, std::size_t count,
                                                         std::size_t chunk_size) noexcept {
  switch (codec) {
    case WireCodec::Q8: return q8_span_wire_size(count, chunk_size);
    case WireCodec::Fp16: return f16_span_wire_size(count);
    case WireCodec::Fp32: break;
  }
  return f32_vector_wire_size(count);
}

/// Quantize + dequantize `values` in place with exactly the arithmetic of
/// write_q8_span / read_q8_into, so an in-process federation can reproduce
/// the remote path's quantization noise bit-for-bit without buffering an
/// encoded payload.
void quantize_roundtrip_q8(std::span<float> values,
                           std::size_t chunk_size = kDefaultQ8ChunkSize);
/// Fp16 twin of quantize_roundtrip_q8.
void quantize_roundtrip_f16(std::span<float> values) noexcept;

/// Apply `codec`'s lossy roundtrip in place (Fp32 is a no-op).
void quantize_roundtrip(WireCodec codec, std::span<float> values, std::size_t chunk_size);

/// Portable IEEE binary16 conversions (round-to-nearest-even, overflow to
/// inf, NaN payloads collapsed to a quiet NaN).
[[nodiscard]] std::uint16_t f32_to_f16_bits(float value) noexcept;
[[nodiscard]] float f16_bits_to_f32(std::uint16_t bits) noexcept;

/// Write a float vector to a file (length-prefixed). Throws on I/O error.
void save_f32_vector(const std::string& path, std::span<const float> values);
/// Read a float vector written by save_f32_vector. Throws on I/O error.
[[nodiscard]] std::vector<float> load_f32_vector(const std::string& path);

}  // namespace fedguard::util
