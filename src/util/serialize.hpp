#pragma once
// Little-endian binary serialization primitives used for model parameter
// transfer and checkpointing. The traffic meter charges transfers at exactly
// the size these writers produce.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace fedguard::util {

// ---- memcpy-based load/store --------------------------------------------------
// Alignment- and aliasing-safe framing primitives: every place that used to
// reinterpret_cast a buffer pointer to a value type (UB when misaligned, and
// flagged by UBSan) goes through these instead.

/// Copy a trivially copyable value out of a byte buffer (must hold sizeof(T)).
template <typename T>
  requires std::is_trivially_copyable_v<T>
[[nodiscard]] T load_trivial(const std::byte* source) noexcept {
  T value;
  std::memcpy(&value, source, sizeof(T));
  return value;
}

/// Copy a trivially copyable value into a byte buffer (must hold sizeof(T)).
template <typename T>
  requires std::is_trivially_copyable_v<T>
void store_trivial(std::byte* target, const T& value) noexcept {
  std::memcpy(target, &value, sizeof(T));
}

// ---- iostream bridging --------------------------------------------------------
// std::iostream speaks char*; the single sanctioned byte-pointer cast in the
// library lives inside these two helpers (std::byte <-> char aliasing is
// always valid), so no other translation unit needs a reinterpret_cast for
// file framing.

/// Write a byte span to a binary stream.
void write_bytes(std::ostream& out, std::span<const std::byte> bytes);
/// Read exactly `bytes.size()` bytes; returns false on short read / error.
[[nodiscard]] bool read_bytes(std::istream& in, std::span<std::byte> bytes);

/// Growable binary output buffer.
class ByteWriter {
 public:
  void write_u32(std::uint32_t value);
  void write_u64(std::uint64_t value);
  void write_f32(float value);
  void write_f32_span(std::span<const float> values);
  void write_string(const std::string& value);

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept { return buffer_; }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

 private:
  std::vector<std::byte> buffer_;
};

/// Sequential reader over a byte span. Throws std::out_of_range on underrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) noexcept : data_{data} {}

  [[nodiscard]] std::uint32_t read_u32();
  [[nodiscard]] std::uint64_t read_u64();
  [[nodiscard]] float read_f32();
  [[nodiscard]] std::vector<float> read_f32_vector(std::size_t count);
  /// Deserialize out.size() floats directly into `out` (zero-copy form of
  /// read_f32_vector for pre-sized destinations like arena rows).
  void read_f32_into(std::span<float> out);
  [[nodiscard]] std::string read_string();

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - offset_; }
  [[nodiscard]] bool exhausted() const noexcept { return offset_ == data_.size(); }

 private:
  void require(std::size_t count) const;

  std::span<const std::byte> data_;
  std::size_t offset_ = 0;
};

/// Serialized size in bytes of a float vector written via write_f32_span,
/// including the u64 length prefix.
[[nodiscard]] constexpr std::size_t f32_vector_wire_size(std::size_t count) noexcept {
  return sizeof(std::uint64_t) + count * sizeof(float);
}

/// Write a float vector to a file (length-prefixed). Throws on I/O error.
void save_f32_vector(const std::string& path, std::span<const float> values);
/// Read a float vector written by save_f32_vector. Throws on I/O error.
[[nodiscard]] std::vector<float> load_f32_vector(const std::string& path);

}  // namespace fedguard::util
