#pragma once
// Wall-clock stopwatch used by the round-timing instrumentation (Table V).

#include <chrono>

namespace fedguard::util {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_{clock::now()} {}

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() noexcept { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace fedguard::util
