#pragma once
// Monotonic (steady_clock) stopwatch — NOT wall-clock; immune to NTP steps.
// Round loops in src/fl and src/net time themselves with obs::now_ns() (the
// same steady clock) so Table V's round_seconds and trace span durations share
// one time source; Stopwatch remains for benches and coarse CLI timing, and
// fedguard-lint (rule no-raw-stopwatch) keeps it out of the instrumented
// layers.

#include <chrono>
#include <cstdint>

namespace fedguard::util {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_{clock::now()} {}

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or the last reset().
  [[nodiscard]] std::uint64_t elapsed_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_)
            .count());
  }

  void reset() noexcept { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace fedguard::util
