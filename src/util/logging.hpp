#pragma once
// Minimal leveled logger. Thread-safe (single global mutex around emission).
// The simulator logs one line per federated round at Info level; module
// internals log at Debug. printf-style formatting (GCC 12 lacks <format>).

#include <string_view>

namespace fedguard::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit a preformatted message (used by the log_* helpers below).
void log_message(LogLevel level, std::string_view message);

void log_debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_error(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace fedguard::util
