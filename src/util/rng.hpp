#pragma once
// Deterministic, fast pseudo-random number generation for the whole library.
//
// All stochastic components of the simulation (data synthesis, Dirichlet
// partitioning, client sampling, weight init, attack noise) draw from Rng
// instances that are derived from a single experiment seed, so every run is
// reproducible bit-for-bit on the same platform.

#include <cstdint>
#include <span>
#include <vector>

namespace fedguard::util {

/// splitmix64 single step; used for seed derivation / hashing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256++ generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via splitmix64 of `seed`.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~static_cast<result_type>(0);
  }

  result_type operator()() noexcept;

  /// Derive an independent child generator; `stream` distinguishes children
  /// created from the same parent state.
  [[nodiscard]] Rng fork(std::uint64_t stream) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  /// Uniform float in [lo, hi).
  [[nodiscard]] float uniform_float(float lo, float hi) noexcept;
  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n) noexcept;
  /// Standard normal via Box-Muller (cached second value).
  [[nodiscard]] double normal() noexcept;
  /// Normal with mean/stddev.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;
  /// Gamma(shape, 1) via Marsaglia-Tsang; shape > 0.
  [[nodiscard]] double gamma(double shape) noexcept;
  /// Dirichlet(alpha...) sample; result sums to 1. Requires all alpha > 0.
  [[nodiscard]] std::vector<double> dirichlet(std::span<const double> alpha) noexcept;
  /// Categorical draw from (unnormalized, non-negative) weights.
  [[nodiscard]] std::size_t categorical(std::span<const double> weights) noexcept;
  /// Bernoulli with probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Sample `k` distinct indices from [0, n) uniformly (k <= n).
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                                    std::size_t k) noexcept;
  /// In-place form with the identical draw sequence; reuses `out`'s capacity
  /// so steady-state callers (the server round loop) allocate nothing.
  void sample_without_replacement(std::size_t n, std::size_t k,
                                  std::vector<std::size_t>& out) noexcept;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace fedguard::util
