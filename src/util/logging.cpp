#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <string>

#include "util/thread_annotations.hpp"

namespace fedguard::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};
// Guards the stderr stream: emission is one fprintf per message, serialized
// so concurrent log lines never interleave mid-line.
Mutex g_emit_mutex;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?????";
  }
}

// The REQUIRES contract makes the serialization point explicit: only
// log_message's critical section may write the stream.
void emit_line(LogLevel level, long long ms, std::string_view message)
    FEDGUARD_REQUIRES(g_emit_mutex) {
  std::fprintf(stderr, "[%lld.%03lld] [%s] %.*s\n", ms / 1000, ms % 1000,
               level_name(level), static_cast<int>(message.size()),
               message.data());
}

void vlog(LogLevel level, const char* fmt, va_list args) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  char buffer[1024];
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  log_message(level, buffer);
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, std::string_view message) {
  if (level < log_level()) return;
  const auto now = std::chrono::system_clock::now();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now.time_since_epoch()).count();
  const MutexLock lock{g_emit_mutex};
  emit_line(level, static_cast<long long>(ms), message);
}

#define FEDGUARD_DEFINE_LOG_FN(fn_name, level)   \
  void fn_name(const char* fmt, ...) {           \
    va_list args;                                \
    va_start(args, fmt);                         \
    vlog(level, fmt, args);                      \
    va_end(args);                                \
  }

FEDGUARD_DEFINE_LOG_FN(log_debug, LogLevel::Debug)
FEDGUARD_DEFINE_LOG_FN(log_info, LogLevel::Info)
FEDGUARD_DEFINE_LOG_FN(log_warn, LogLevel::Warn)
FEDGUARD_DEFINE_LOG_FN(log_error, LogLevel::Error)

#undef FEDGUARD_DEFINE_LOG_FN

}  // namespace fedguard::util
