#pragma once
// FEDGUARD_CHECK / FEDGUARD_CHECK_FINITE: the debug-assert layer guarding the
// aggregator and kernel boundaries (shape agreement, finite inputs). Compiled
// in when FEDGUARD_ENABLE_ASSERTS is defined — driven by the CMake option
// FEDGUARD_ASSERTS, which defaults ON in sanitizer builds — and otherwise a
// no-op with zero overhead.
//
// Violations throw util::CheckError rather than aborting: a NaN-poisoned
// client update then fails one aggregation round (and is testable with
// EXPECT_THROW) instead of taking down a long-running server.

#include <span>
#include <stdexcept>
#include <string>

namespace fedguard::util {

/// Thrown by FEDGUARD_CHECK / FEDGUARD_CHECK_FINITE on violation.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// True when the FEDGUARD_CHECK layer is compiled in (-DFEDGUARD_ASSERTS=ON).
[[nodiscard]] constexpr bool asserts_enabled() noexcept {
#ifdef FEDGUARD_ENABLE_ASSERTS
  return true;
#else
  return false;
#endif
}

/// All elements finite (no NaN / +-Inf). Empty spans are finite.
[[nodiscard]] bool all_finite(std::span<const float> values) noexcept;
[[nodiscard]] bool all_finite(std::span<const double> values) noexcept;

/// Formats "<file>:<line>: check failed: <expression> (<detail>)" and throws
/// CheckError. Out-of-line so the macro expansion stays small.
[[noreturn]] void check_failed(const char* expression, const char* file, int line,
                               const std::string& detail);

}  // namespace fedguard::util

#ifdef FEDGUARD_ENABLE_ASSERTS
#define FEDGUARD_CHECK(condition, detail)                                       \
  do {                                                                          \
    if (!(condition)) {                                                         \
      ::fedguard::util::check_failed(#condition, __FILE__, __LINE__, (detail)); \
    }                                                                           \
  } while (false)
#define FEDGUARD_CHECK_FINITE(values, detail)                             \
  do {                                                                    \
    if (!::fedguard::util::all_finite(values)) {                          \
      ::fedguard::util::check_failed("all_finite(" #values ")", __FILE__, \
                                     __LINE__, (detail));                 \
    }                                                                     \
  } while (false)
#else
#define FEDGUARD_CHECK(condition, detail) ((void)0)
#define FEDGUARD_CHECK_FINITE(values, detail) ((void)0)
#endif
