#pragma once
// Clang Thread Safety Analysis capability macros and the annotated lock
// vocabulary the whole tree uses (layer 4 of the static-analysis gate, see
// docs/STATIC_ANALYSIS.md). Under clang the FEDGUARD_* macros expand to the
// thread-safety attributes, so `-DFEDGUARD_THREAD_SAFETY=ON` builds with
// `-Wthread-safety -Werror=thread-safety-analysis` prove at compile time that
// every guarded field is only touched with its lock held and every locking
// helper honours its declared contract. Under gcc (this container) they
// expand to nothing and the wrappers cost exactly a std::mutex.
//
// libstdc++'s std::mutex carries no capability attributes, so raw std::mutex
// members are invisible to the analysis. Lock state therefore lives in the
// annotated wrappers below (util::Mutex / util::SharedMutex) and is always
// taken through the RAII guards (util::MutexLock / util::SharedMutexLock) —
// fedguard-lint rules no-unannotated-mutex and lock-discipline keep both
// invariants; this header is their one sanctioned implementation site.
//
// Annotation how-to (details + suppression policy in docs/STATIC_ANALYSIS.md):
//
//   util::Mutex mutex_;
//   std::vector<Task> queue_ FEDGUARD_GUARDED_BY(mutex_);
//   void drain_locked() FEDGUARD_REQUIRES(mutex_);   // caller holds mutex_
//   void drain() FEDGUARD_EXCLUDES(mutex_);          // caller must NOT hold
//
//   { const util::MutexLock lock{mutex_}; queue_.push_back(t); }

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define FEDGUARD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FEDGUARD_THREAD_ANNOTATION(x)  // no-op: gcc has no -Wthread-safety
#endif

/// Marks a class as a lockable capability (e.g. a mutex wrapper).
#define FEDGUARD_CAPABILITY(name) FEDGUARD_THREAD_ANNOTATION(capability(name))
/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define FEDGUARD_SCOPED_CAPABILITY FEDGUARD_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while holding the named lock.
#define FEDGUARD_GUARDED_BY(x) FEDGUARD_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose *pointee* is protected by the named lock.
#define FEDGUARD_PT_GUARDED_BY(x) FEDGUARD_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function requires the listed capabilities to be held by the caller.
#define FEDGUARD_REQUIRES(...) \
  FEDGUARD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define FEDGUARD_REQUIRES_SHARED(...) \
  FEDGUARD_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
/// Function acquires the listed capabilities (and does not release them).
#define FEDGUARD_ACQUIRE(...) \
  FEDGUARD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define FEDGUARD_ACQUIRE_SHARED(...) \
  FEDGUARD_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
/// Function releases the listed capabilities.
#define FEDGUARD_RELEASE(...) \
  FEDGUARD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define FEDGUARD_RELEASE_SHARED(...) \
  FEDGUARD_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `result`.
#define FEDGUARD_TRY_ACQUIRE(result, ...) \
  FEDGUARD_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))
/// Caller must NOT hold the listed capabilities (deadlock fence: the function
/// acquires them itself).
#define FEDGUARD_EXCLUDES(...) \
  FEDGUARD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Escape hatch for functions the analysis cannot model; pair every use with
/// a justification comment (same policy as fedguard-lint allow()).
#define FEDGUARD_NO_THREAD_SAFETY_ANALYSIS \
  FEDGUARD_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace fedguard::util {

/// Annotated exclusive mutex. Drop-in for std::mutex wherever the lock guards
/// shared state; always lock through MutexLock (fedguard-lint:
/// lock-discipline) so the analysis sees every critical section.
class FEDGUARD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FEDGUARD_ACQUIRE() { mutex_.lock(); }
  void unlock() FEDGUARD_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() FEDGUARD_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

 private:
  std::mutex mutex_;
};

/// Annotated reader/writer mutex (reactor shards will take shared read locks
/// on routing state; exclusive writes stay rare).
class FEDGUARD_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() FEDGUARD_ACQUIRE() { mutex_.lock(); }
  void unlock() FEDGUARD_RELEASE() { mutex_.unlock(); }
  void lock_shared() FEDGUARD_ACQUIRE_SHARED() { mutex_.lock_shared(); }
  void unlock_shared() FEDGUARD_RELEASE_SHARED() { mutex_.unlock_shared(); }

 private:
  std::shared_mutex mutex_;
};

/// RAII exclusive lock over util::Mutex (std::lock_guard equivalent).
class FEDGUARD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) FEDGUARD_ACQUIRE(mutex) : mutex_{mutex} {
    mutex_.lock();
  }
  ~MutexLock() FEDGUARD_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// RAII shared (reader) lock over util::SharedMutex.
class FEDGUARD_SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mutex) FEDGUARD_ACQUIRE_SHARED(mutex)
      : mutex_{mutex} {
    mutex_.lock_shared();
  }
  ~SharedMutexLock() FEDGUARD_RELEASE() { mutex_.unlock_shared(); }

  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Condition variable usable with util::Mutex. Waits release and reacquire
/// the mutex internally, so from the analysis' point of view the capability
/// is held across the wait — exactly the guarantee the caller observes.
/// Callers re-check their predicate in a loop (spurious wakeups), which keeps
/// every guarded access inside an analyzable critical section without
/// attribute-annotated lambdas.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mutex) FEDGUARD_REQUIRES(mutex) { cv_.wait(mutex); }
  /// Bounded wait for deadline-driven collectors (the hierarchical root
  /// waiting on shard partials): returns timeout/no_timeout like the
  /// underlying std wait, with the same held-across-the-wait guarantee.
  std::cv_status wait_for(Mutex& mutex, std::chrono::milliseconds duration)
      FEDGUARD_REQUIRES(mutex) {
    return cv_.wait_for(mutex, duration);
  }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace fedguard::util
