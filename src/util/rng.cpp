#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numeric>

namespace fedguard::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x1ULL;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t stream) noexcept {
  std::uint64_t mix = (*this)() ^ (stream * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL);
  return Rng{mix};
}

double Rng::uniform() noexcept {
  // 53-bit mantissa construction gives uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

float Rng::uniform_float(float lo, float hi) noexcept {
  return lo + (hi - lo) * static_cast<float>(uniform());
}

std::uint64_t Rng::uniform_int(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire rejection sampling for unbiased bounded integers.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

double Rng::gamma(double shape) noexcept {
  assert(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang trick).
    const double u = uniform();
    return gamma(shape + 1.0) * std::pow(u > 0 ? u : 1e-300, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

std::vector<double> Rng::dirichlet(std::span<const double> alpha) noexcept {
  std::vector<double> out(alpha.size());
  double total = 0.0;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    out[i] = gamma(alpha[i]);
    total += out[i];
  }
  if (total <= 0.0) {
    // Degenerate draw: fall back to uniform simplex point.
    const double uniform_mass = 1.0 / static_cast<double>(alpha.size());
    for (auto& v : out) v = uniform_mass;
    return out;
  }
  for (auto& v : out) v /= total;
  return out;
}

std::size_t Rng::categorical(std::span<const double> weights) noexcept {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);
  const double u = uniform() * total;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (u < cumulative) return i;
  }
  return weights.size() - 1;
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) noexcept {
  std::vector<std::size_t> indices;
  sample_without_replacement(n, k, indices);
  return indices;
}

void Rng::sample_without_replacement(std::size_t n, std::size_t k,
                                     std::vector<std::size_t>& out) noexcept {
  assert(k <= n);
  // Partial Fisher-Yates over an index table; O(n) memory, O(n + k) time.
  out.resize(n);
  std::iota(out.begin(), out.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform_int(n - i));
    std::swap(out[i], out[j]);
  }
  out.resize(k);
}

}  // namespace fedguard::util
