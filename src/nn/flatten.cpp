#include "nn/flatten.hpp"

#include <stdexcept>

namespace fedguard::nn {

tensor::Tensor Flatten::forward(const tensor::Tensor& input) {
  if (input.rank() < 2) {
    throw std::invalid_argument{"Flatten::forward: rank must be >= 2"};
  }
  input_shape_ = input.shape();
  const std::size_t batch = input.dim(0);
  return input.reshaped({batch, input.size() / batch});
}

tensor::Tensor Flatten::backward(const tensor::Tensor& grad_output) {
  if (grad_output.size() != tensor::Tensor::element_count(input_shape_)) {
    throw std::invalid_argument{"Flatten::backward: gradient size mismatch"};
  }
  return grad_output.reshaped(input_shape_);
}

}  // namespace fedguard::nn
