#include "nn/activations.hpp"

#include <cmath>
#include <stdexcept>

namespace fedguard::nn {

tensor::Tensor ReLU::forward(const tensor::Tensor& input) {
  mask_ = tensor::Tensor{input.shape()};
  tensor::Tensor out{input.shape()};
  const auto in = input.data();
  auto mask = mask_.data();
  auto dst = out.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    const bool positive = in[i] > 0.0f;
    mask[i] = positive ? 1.0f : 0.0f;
    dst[i] = positive ? in[i] : 0.0f;
  }
  return out;
}

tensor::Tensor ReLU::backward(const tensor::Tensor& grad_output) {
  if (!grad_output.same_shape(mask_)) {
    throw std::invalid_argument{"ReLU::backward: gradient shape mismatch"};
  }
  tensor::Tensor grad_input{grad_output.shape()};
  const auto go = grad_output.data();
  const auto mask = mask_.data();
  auto dst = grad_input.data();
  for (std::size_t i = 0; i < go.size(); ++i) dst[i] = go[i] * mask[i];
  return grad_input;
}

tensor::Tensor Sigmoid::forward(const tensor::Tensor& input) {
  output_ = tensor::Tensor{input.shape()};
  const auto in = input.data();
  auto dst = output_.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    dst[i] = 1.0f / (1.0f + std::exp(-in[i]));
  }
  return output_;
}

tensor::Tensor Sigmoid::backward(const tensor::Tensor& grad_output) {
  if (!grad_output.same_shape(output_)) {
    throw std::invalid_argument{"Sigmoid::backward: gradient shape mismatch"};
  }
  tensor::Tensor grad_input{grad_output.shape()};
  const auto go = grad_output.data();
  const auto y = output_.data();
  auto dst = grad_input.data();
  for (std::size_t i = 0; i < go.size(); ++i) dst[i] = go[i] * y[i] * (1.0f - y[i]);
  return grad_input;
}

tensor::Tensor Tanh::forward(const tensor::Tensor& input) {
  output_ = tensor::Tensor{input.shape()};
  const auto in = input.data();
  auto dst = output_.data();
  for (std::size_t i = 0; i < in.size(); ++i) dst[i] = std::tanh(in[i]);
  return output_;
}

tensor::Tensor Tanh::backward(const tensor::Tensor& grad_output) {
  if (!grad_output.same_shape(output_)) {
    throw std::invalid_argument{"Tanh::backward: gradient shape mismatch"};
  }
  tensor::Tensor grad_input{grad_output.shape()};
  const auto go = grad_output.data();
  const auto y = output_.data();
  auto dst = grad_input.data();
  for (std::size_t i = 0; i < go.size(); ++i) dst[i] = go[i] * (1.0f - y[i] * y[i]);
  return grad_input;
}

}  // namespace fedguard::nn
