#pragma once
// kxk max pooling with stride == kernel, matching Table II's MaxPool2d(2,2)
// layers. Trailing rows/cols that do not fill a full window are dropped
// (floor division), as in PyTorch's default.

#include "nn/module.hpp"

namespace fedguard::nn {

class MaxPool2d final : public Module {
 public:
  explicit MaxPool2d(std::size_t kernel);

  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;

  [[nodiscard]] std::string name() const override { return "MaxPool2d"; }

 private:
  std::size_t kernel_;
  std::vector<std::size_t> argmax_;        // flat input index of each output element
  std::vector<std::size_t> input_shape_;   // cached for backward
  std::vector<std::size_t> output_shape_;
};

}  // namespace fedguard::nn
