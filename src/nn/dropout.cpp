#include "nn/dropout.hpp"

#include <stdexcept>

namespace fedguard::nn {

Dropout::Dropout(double p, util::Rng& rng) : p_{p}, rng_{rng.fork(0xd70)} {
  if (p < 0.0 || p >= 1.0) {
    throw std::invalid_argument{"Dropout: p must be in [0, 1)"};
  }
}

tensor::Tensor Dropout::forward(const tensor::Tensor& input) {
  if (!training() || p_ == 0.0) {
    identity_pass_ = true;
    return input;
  }
  identity_pass_ = false;
  mask_ = tensor::Tensor{input.shape()};
  tensor::Tensor out{input.shape()};
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
  const auto in = input.data();
  auto mask = mask_.data();
  auto dst = out.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    const float m = rng_.bernoulli(p_) ? 0.0f : keep_scale;
    mask[i] = m;
    dst[i] = in[i] * m;
  }
  return out;
}

tensor::Tensor Dropout::backward(const tensor::Tensor& grad_output) {
  if (identity_pass_) return grad_output;
  if (!grad_output.same_shape(mask_)) {
    throw std::invalid_argument{"Dropout::backward: gradient shape mismatch"};
  }
  tensor::Tensor grad_input{grad_output.shape()};
  const auto go = grad_output.data();
  const auto mask = mask_.data();
  auto dst = grad_input.data();
  for (std::size_t i = 0; i < go.size(); ++i) dst[i] = go[i] * mask[i];
  return grad_input;
}

}  // namespace fedguard::nn
