#pragma once
// Additional layers beyond the paper's reference architectures, rounding out
// the layer zoo for downstream users: LeakyReLU, Softmax (as a layer, for
// models that need explicit probabilities mid-network), and average pooling.

#include "nn/module.hpp"

namespace fedguard::nn {

class LeakyReLU final : public Module {
 public:
  explicit LeakyReLU(float negative_slope = 0.01f) : slope_{negative_slope} {}

  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "LeakyReLU"; }

 private:
  float slope_;
  tensor::Tensor mask_;  // 1 or slope per element
};

/// Row-wise softmax as a layer ([N, D] -> [N, D]). Backward applies the
/// softmax Jacobian: dx = y .* (dy - sum(dy .* y)).
class Softmax final : public Module {
 public:
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "Softmax"; }

 private:
  tensor::Tensor output_;
};

/// kxk average pooling with stride == kernel on [N, C, H, W].
class AvgPool2d final : public Module {
 public:
  explicit AvgPool2d(std::size_t kernel);

  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "AvgPool2d"; }

 private:
  std::size_t kernel_;
  std::vector<std::size_t> input_shape_;
  std::vector<std::size_t> output_shape_;
};

}  // namespace fedguard::nn
