#pragma once
// First-order optimizers operating on a fixed parameter list. The optimizer
// does not own the parameters; per-parameter state (momentum/Adam moments) is
// keyed by list position, so the parameter list must stay stable.

#include <vector>

#include "nn/module.hpp"

namespace fedguard::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> parameters)
      : parameters_{std::move(parameters)} {}
  virtual ~Optimizer() = default;

  /// Apply one update step from the accumulated gradients.
  virtual void step() = 0;

  /// Zero all parameter gradients.
  void zero_grad();

  [[nodiscard]] const std::vector<Parameter*>& parameters() const noexcept {
    return parameters_;
  }

 protected:
  std::vector<Parameter*> parameters_;
};

/// SGD with optional momentum and L2 weight decay.
class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> parameters, float learning_rate, float momentum = 0.0f,
      float weight_decay = 0.0f);

  void step() override;

  void set_learning_rate(float lr) noexcept { learning_rate_ = lr; }
  [[nodiscard]] float learning_rate() const noexcept { return learning_rate_; }

 private:
  float learning_rate_;
  float momentum_;
  float weight_decay_;
  std::vector<tensor::Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<Parameter*> parameters, float learning_rate, float beta1 = 0.9f,
       float beta2 = 0.999f, float epsilon = 1e-8f, float weight_decay = 0.0f);

  void step() override;

  void set_learning_rate(float lr) noexcept { learning_rate_ = lr; }
  [[nodiscard]] float learning_rate() const noexcept { return learning_rate_; }

 private:
  float learning_rate_;
  float beta1_, beta2_, epsilon_, weight_decay_;
  std::size_t step_count_ = 0;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
};

}  // namespace fedguard::nn
