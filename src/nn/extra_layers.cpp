#include "nn/extra_layers.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace fedguard::nn {

tensor::Tensor LeakyReLU::forward(const tensor::Tensor& input) {
  mask_ = tensor::Tensor{input.shape()};
  tensor::Tensor out{input.shape()};
  const auto in = input.data();
  auto mask = mask_.data();
  auto dst = out.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    const float m = in[i] > 0.0f ? 1.0f : slope_;
    mask[i] = m;
    dst[i] = in[i] * m;
  }
  return out;
}

tensor::Tensor LeakyReLU::backward(const tensor::Tensor& grad_output) {
  if (!grad_output.same_shape(mask_)) {
    throw std::invalid_argument{"LeakyReLU::backward: gradient shape mismatch"};
  }
  tensor::Tensor grad_input{grad_output.shape()};
  const auto go = grad_output.data();
  const auto mask = mask_.data();
  auto dst = grad_input.data();
  for (std::size_t i = 0; i < go.size(); ++i) dst[i] = go[i] * mask[i];
  return grad_input;
}

tensor::Tensor Softmax::forward(const tensor::Tensor& input) {
  if (input.rank() != 2) {
    throw std::invalid_argument{"Softmax::forward: expected [N, D]"};
  }
  tensor::softmax_rows(input, output_);
  return output_;
}

tensor::Tensor Softmax::backward(const tensor::Tensor& grad_output) {
  if (!grad_output.same_shape(output_)) {
    throw std::invalid_argument{"Softmax::backward: gradient shape mismatch"};
  }
  tensor::Tensor grad_input{grad_output.shape()};
  for (std::size_t r = 0; r < grad_output.dim(0); ++r) {
    const auto y = output_.row(r);
    const auto dy = grad_output.row(r);
    auto dx = grad_input.row(r);
    double dot = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      dot += static_cast<double>(dy[i]) * y[i];
    }
    for (std::size_t i = 0; i < y.size(); ++i) {
      dx[i] = y[i] * (dy[i] - static_cast<float>(dot));
    }
  }
  return grad_input;
}

AvgPool2d::AvgPool2d(std::size_t kernel) : kernel_{kernel} {
  if (kernel == 0) throw std::invalid_argument{"AvgPool2d: kernel must be positive"};
}

tensor::Tensor AvgPool2d::forward(const tensor::Tensor& input) {
  if (input.rank() != 4) {
    throw std::invalid_argument{"AvgPool2d::forward: expected [N, C, H, W]"};
  }
  const std::size_t batch = input.dim(0), channels = input.dim(1);
  const std::size_t in_h = input.dim(2), in_w = input.dim(3);
  const std::size_t out_h = in_h / kernel_, out_w = in_w / kernel_;
  if (out_h == 0 || out_w == 0) {
    throw std::invalid_argument{"AvgPool2d::forward: input smaller than kernel"};
  }
  input_shape_ = input.shape();
  output_shape_ = {batch, channels, out_h, out_w};
  tensor::Tensor out{output_shape_};
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  const float* src = input.raw();
  float* dst = out.raw();
  std::size_t out_index = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      const std::size_t plane = (n * channels + c) * in_h * in_w;
      for (std::size_t oy = 0; oy < out_h; ++oy) {
        for (std::size_t ox = 0; ox < out_w; ++ox) {
          float acc = 0.0f;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              acc += src[plane + (oy * kernel_ + ky) * in_w + ox * kernel_ + kx];
            }
          }
          dst[out_index++] = acc * inv;
        }
      }
    }
  }
  return out;
}

tensor::Tensor AvgPool2d::backward(const tensor::Tensor& grad_output) {
  if (grad_output.shape() != output_shape_) {
    throw std::invalid_argument{"AvgPool2d::backward: gradient shape mismatch"};
  }
  tensor::Tensor grad_input{input_shape_};
  const std::size_t batch = input_shape_[0], channels = input_shape_[1];
  const std::size_t in_h = input_shape_[2], in_w = input_shape_[3];
  const std::size_t out_h = output_shape_[2], out_w = output_shape_[3];
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  const float* src = grad_output.raw();
  float* dst = grad_input.raw();
  std::size_t out_index = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      const std::size_t plane = (n * channels + c) * in_h * in_w;
      for (std::size_t oy = 0; oy < out_h; ++oy) {
        for (std::size_t ox = 0; ox < out_w; ++ox) {
          const float g = src[out_index++] * inv;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              dst[plane + (oy * kernel_ + ky) * in_w + ox * kernel_ + kx] += g;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

}  // namespace fedguard::nn
