#include "nn/checkpoint.hpp"

#include <fstream>
#include <stdexcept>

#include "util/serialize.hpp"

namespace fedguard::nn {

namespace {
constexpr std::uint32_t kMagic = 0x46474331;  // "FGC1"
}

void save_checkpoint(const std::string& path, Module& module) {
  util::ByteWriter writer;
  writer.write_u32(kMagic);
  const auto parameters = module.parameters();
  writer.write_u64(parameters.size());
  for (const Parameter* p : parameters) {
    writer.write_string(p->name);
    writer.write_u64(p->value.rank());
    for (std::size_t axis = 0; axis < p->value.rank(); ++axis) {
      writer.write_u64(p->value.dim(axis));
    }
    writer.write_f32_span(p->value.data());
  }
  std::ofstream file{path, std::ios::binary | std::ios::trunc};
  if (!file) throw std::runtime_error{"save_checkpoint: cannot open " + path};
  util::write_bytes(file, writer.bytes());
  if (!file) throw std::runtime_error{"save_checkpoint: write failed for " + path};
}

void load_checkpoint(const std::string& path, Module& module) {
  std::ifstream file{path, std::ios::binary | std::ios::ate};
  if (!file) throw std::runtime_error{"load_checkpoint: cannot open " + path};
  const auto size = static_cast<std::size_t>(file.tellg());
  file.seekg(0);
  std::vector<std::byte> buffer(size);
  if (!util::read_bytes(file, buffer)) {
    throw std::runtime_error{"load_checkpoint: read failed for " + path};
  }

  util::ByteReader reader{buffer};
  if (reader.read_u32() != kMagic) {
    throw std::runtime_error{"load_checkpoint: bad magic in " + path};
  }
  const auto parameters = module.parameters();
  const auto stored = static_cast<std::size_t>(reader.read_u64());
  if (stored != parameters.size()) {
    throw std::invalid_argument{"load_checkpoint: parameter count mismatch"};
  }
  for (Parameter* p : parameters) {
    const std::string name = reader.read_string();
    if (name != p->name) {
      throw std::invalid_argument{"load_checkpoint: parameter name mismatch: expected '" +
                                  p->name + "', found '" + name + "'"};
    }
    const auto rank = static_cast<std::size_t>(reader.read_u64());
    std::vector<std::size_t> shape(rank);
    for (auto& dim : shape) dim = static_cast<std::size_t>(reader.read_u64());
    if (shape != p->value.shape()) {
      throw std::invalid_argument{"load_checkpoint: shape mismatch for '" + name + "'"};
    }
    const auto count = static_cast<std::size_t>(reader.read_u64());
    if (count != p->value.size()) {
      throw std::invalid_argument{"load_checkpoint: size mismatch for '" + name + "'"};
    }
    const std::vector<float> values = reader.read_f32_vector(count);
    std::copy(values.begin(), values.end(), p->value.raw());
  }
}

}  // namespace fedguard::nn
