#pragma once
// Ordered container of modules; forward chains layer outputs, backward chains
// gradients in reverse. Owns its children.

#include <memory>

#include "nn/module.hpp"

namespace fedguard::nn {

class Sequential final : public Module {
 public:
  Sequential() = default;

  /// Append a layer; returns a reference for inline chaining.
  Sequential& add(std::unique_ptr<Module> layer);

  /// Construct-and-append helper.
  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto layer = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  void set_training(bool training) override;

  [[nodiscard]] std::string name() const override { return "Sequential"; }
  [[nodiscard]] std::size_t layer_count() const noexcept { return layers_.size(); }
  [[nodiscard]] Module& layer(std::size_t i) noexcept { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Module>> layers_;
};

}  // namespace fedguard::nn
