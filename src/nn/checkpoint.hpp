#pragma once
// Named-parameter checkpointing: save/restore a module's trainable state to a
// binary file. Names and shapes are validated on load, so loading a
// checkpoint into a mismatched architecture fails loudly instead of silently
// scrambling weights. Used to persist the global model across server restarts
// and by the examples.

#include <string>

#include "nn/module.hpp"

namespace fedguard::nn {

/// Write every parameter (name, shape, values) of `module` to `path`.
/// Throws std::runtime_error on I/O failure.
void save_checkpoint(const std::string& path, Module& module);

/// Restore parameters saved by save_checkpoint. Throws std::runtime_error on
/// I/O or format errors and std::invalid_argument when the checkpoint does
/// not match the module's parameter names/shapes (in declaration order).
void load_checkpoint(const std::string& path, Module& module);

}  // namespace fedguard::nn
