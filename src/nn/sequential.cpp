#include "nn/sequential.hpp"

namespace fedguard::nn {

Sequential& Sequential::add(std::unique_ptr<Module> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

tensor::Tensor Sequential::forward(const tensor::Tensor& input) {
  tensor::Tensor current = input;
  for (auto& layer : layers_) current = layer->forward(current);
  return current;
}

tensor::Tensor Sequential::backward(const tensor::Tensor& grad_output) {
  tensor::Tensor current = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    current = (*it)->backward(current);
  }
  return current;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> all;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) all.push_back(p);
  }
  return all;
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& layer : layers_) layer->set_training(training);
}

}  // namespace fedguard::nn
