#include "nn/sequential.hpp"

#include <string>

#include "obs/trace.hpp"

namespace fedguard::nn {

Sequential& Sequential::add(std::unique_ptr<Module> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

tensor::Tensor Sequential::forward(const tensor::Tensor& input) {
  tensor::Tensor current = input;
#if defined(FEDGUARD_TRACE_ENABLED)
  // Depth instrumentation (span taxonomy `layer.forward`): the traced loop is
  // taken only while a session records, so the untraced hot path never pays
  // for the per-layer name strings.
  if (obs::TraceSession::active()) {
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      FEDGUARD_TRACE_SPAN("layer.forward",
                          std::to_string(i) + ":" + layers_[i]->name());
      current = layers_[i]->forward(current);
    }
    return current;
  }
#endif
  for (auto& layer : layers_) current = layer->forward(current);
  return current;
}

tensor::Tensor Sequential::backward(const tensor::Tensor& grad_output) {
  tensor::Tensor current = grad_output;
#if defined(FEDGUARD_TRACE_ENABLED)
  if (obs::TraceSession::active()) {
    for (std::size_t i = layers_.size(); i-- > 0;) {
      FEDGUARD_TRACE_SPAN("layer.backward",
                          std::to_string(i) + ":" + layers_[i]->name());
      current = layers_[i]->backward(current);
    }
    return current;
  }
#endif
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    current = (*it)->backward(current);
  }
  return current;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> all;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) all.push_back(p);
  }
  return all;
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& layer : layers_) layer->set_training(training);
}

}  // namespace fedguard::nn
