#pragma once
// Elementwise activation layers (shape-agnostic).

#include "nn/module.hpp"

namespace fedguard::nn {

class ReLU final : public Module {
 public:
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }

 private:
  tensor::Tensor mask_;  // 1 where input > 0
};

class Sigmoid final : public Module {
 public:
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "Sigmoid"; }

 private:
  tensor::Tensor output_;  // sigmoid(x), reused in the gradient
};

class Tanh final : public Module {
 public:
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "Tanh"; }

 private:
  tensor::Tensor output_;
};

}  // namespace fedguard::nn
