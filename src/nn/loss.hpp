#pragma once
// Loss functions. Each returns the scalar loss and the gradient w.r.t. its
// first input so callers can seed the backward pass. Reductions follow the
// conventions used in the paper's reference implementation (PyTorch):
//  - cross-entropy: mean over the batch;
//  - CVAE reconstruction BCE: sum over pixels, mean over the batch;
//  - Gaussian KL: sum over latent dims, mean over the batch.

#include <span>

#include "tensor/tensor.hpp"

namespace fedguard::nn {

struct LossResult {
  float value = 0.0f;
  tensor::Tensor grad;  // gradient w.r.t. the first argument
};

/// Softmax + negative log-likelihood on integer class labels.
/// logits: [N, L]; labels: N entries in [0, L).
[[nodiscard]] LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                               std::span<const int> labels);

/// Number of rows whose argmax matches the label.
[[nodiscard]] std::size_t count_correct(const tensor::Tensor& logits,
                                        std::span<const int> labels);

/// Binary cross entropy on probabilities (outputs of a sigmoid), summed over
/// features and averaged over the batch. predictions/targets: [N, D] in [0,1].
[[nodiscard]] LossResult binary_cross_entropy(const tensor::Tensor& predictions,
                                              const tensor::Tensor& targets);

/// KL(N(mu, diag(exp(logvar))) || N(0, I)), summed over latent dims and
/// averaged over the batch. Returns gradients for both inputs.
struct GaussianKlResult {
  float value = 0.0f;
  tensor::Tensor grad_mu;
  tensor::Tensor grad_logvar;
};
[[nodiscard]] GaussianKlResult gaussian_kl(const tensor::Tensor& mu,
                                           const tensor::Tensor& logvar);

/// Mean squared error, averaged over every element. Used by the Spectral
/// baseline's update-reconstruction VAE.
[[nodiscard]] LossResult mean_squared_error(const tensor::Tensor& predictions,
                                            const tensor::Tensor& targets);

}  // namespace fedguard::nn
