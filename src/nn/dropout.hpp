#pragma once
// Inverted dropout: active only in training mode; identity in eval mode.
// Not used by the paper's reference architectures but provided for the
// pluggable-classifier API surface (and exercised in tests).

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace fedguard::nn {

class Dropout final : public Module {
 public:
  /// `p` is the drop probability in [0, 1).
  Dropout(double p, util::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "Dropout"; }

 private:
  double p_;
  util::Rng rng_;
  tensor::Tensor mask_;  // scaled keep mask from the last training forward
  bool identity_pass_ = true;
};

}  // namespace fedguard::nn
