#include "nn/conv2d.hpp"
#include <cmath>

#include <stdexcept>

#include "tensor/init.hpp"

namespace fedguard::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t in_h, std::size_t in_w, util::Rng& rng, std::size_t padding,
               bool with_bias)
    : out_channels_{out_channels},
      with_bias_{with_bias},
      geometry_{in_channels, in_h, in_w, kernel, padding},
      weight_{{out_channels, in_channels * kernel * kernel}, "conv.weight"},
      bias_{{out_channels}, "conv.bias"} {
  if (kernel == 0 || kernel > in_h + 2 * padding || kernel > in_w + 2 * padding) {
    throw std::invalid_argument{"Conv2d: kernel does not fit input"};
  }
  tensor::init_kaiming_uniform(weight_.value, rng, geometry_.patch_size());
  if (with_bias_) {
    const float bound = 1.0f / std::sqrt(static_cast<float>(geometry_.patch_size()));
    tensor::init_uniform(bias_.value, rng, -bound, bound);
  }
}

tensor::Tensor Conv2d::forward(const tensor::Tensor& input) {
  const auto& g = geometry_;
  if (input.rank() != 4 || input.dim(1) != g.in_channels || input.dim(2) != g.in_h ||
      input.dim(3) != g.in_w) {
    throw std::invalid_argument{"Conv2d::forward: input shape mismatch, got " +
                                input.shape_string()};
  }
  cached_input_ = input;
  const std::size_t batch = input.dim(0);
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t pixels = oh * ow;
  const std::size_t image_size = g.in_channels * g.in_h * g.in_w;
  tensor::Tensor out{{batch, out_channels_, oh, ow}};
  tensor::Tensor result{{out_channels_, pixels}};
  for (std::size_t n = 0; n < batch; ++n) {
    tensor::im2col(input.data().subspan(n * image_size, image_size), g, scratch_columns_);
    tensor::matmul(weight_.value, scratch_columns_, result);
    float* dst = out.raw() + n * out_channels_ * pixels;
    const float* src = result.raw();
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      const float b = with_bias_ ? bias_.value[oc] : 0.0f;
      for (std::size_t p = 0; p < pixels; ++p) dst[oc * pixels + p] = src[oc * pixels + p] + b;
    }
  }
  return out;
}

tensor::Tensor Conv2d::backward(const tensor::Tensor& grad_output) {
  const auto& g = geometry_;
  const std::size_t batch = cached_input_.dim(0);
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t pixels = oh * ow;
  if (grad_output.rank() != 4 || grad_output.dim(0) != batch ||
      grad_output.dim(1) != out_channels_ || grad_output.dim(2) != oh ||
      grad_output.dim(3) != ow) {
    throw std::invalid_argument{"Conv2d::backward: gradient shape mismatch"};
  }
  const std::size_t image_size = g.in_channels * g.in_h * g.in_w;
  tensor::Tensor grad_input{cached_input_.shape()};
  tensor::Tensor grad_cols{{g.patch_size(), pixels}};
  // View one sample of grad_output as a [out_channels, pixels] matrix.
  tensor::Tensor grad_mat{{out_channels_, pixels}};
  for (std::size_t n = 0; n < batch; ++n) {
    const float* go = grad_output.raw() + n * out_channels_ * pixels;
    std::copy(go, go + out_channels_ * pixels, grad_mat.raw());
    // dW += dY [oc, pix] * cols^T  => use matmul_trans_b(dY, cols) since
    // cols is [patch, pix]: dW[oc, patch] = sum_pix dY[oc,pix]*cols[patch,pix].
    tensor::im2col(cached_input_.data().subspan(n * image_size, image_size), g,
                   scratch_columns_);
    {
      // Accumulate into weight_.grad without zeroing: temp then axpy.
      tensor::Tensor dw{{out_channels_, g.patch_size()}};
      tensor::matmul_trans_b(grad_mat, scratch_columns_, dw);
      tensor::axpy(1.0f, dw.data(), weight_.grad.data());
    }
    if (with_bias_) {
      for (std::size_t oc = 0; oc < out_channels_; ++oc) {
        float acc = 0.0f;
        for (std::size_t p = 0; p < pixels; ++p) acc += go[oc * pixels + p];
        bias_.grad[oc] += acc;
      }
    }
    // dcols [patch, pix] = W^T [patch, oc] * dY [oc, pix]
    tensor::matmul_trans_a(weight_.value, grad_mat, grad_cols);
    tensor::col2im_accumulate(grad_cols, g,
                              grad_input.data().subspan(n * image_size, image_size));
  }
  return grad_input;
}

std::vector<Parameter*> Conv2d::parameters() {
  if (with_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace fedguard::nn
