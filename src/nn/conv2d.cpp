#include "nn/conv2d.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/init.hpp"

namespace fedguard::nn {

namespace {
// Cap on the im2col column matrix (floats) per GEMM chunk: 4M floats = 16 MiB.
// Typical layers fit a whole client batch in one chunk; the cap only bounds
// memory for very large batches or feature maps.
constexpr std::size_t kMaxColumnFloats = std::size_t{1} << 22;
}  // namespace

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t in_h, std::size_t in_w, util::Rng& rng, std::size_t padding,
               bool with_bias)
    : out_channels_{out_channels},
      with_bias_{with_bias},
      geometry_{in_channels, in_h, in_w, kernel, padding},
      weight_{{out_channels, in_channels * kernel * kernel}, "conv.weight"},
      bias_{{out_channels}, "conv.bias"} {
  if (kernel == 0 || kernel > in_h + 2 * padding || kernel > in_w + 2 * padding) {
    throw std::invalid_argument{"Conv2d: kernel does not fit input"};
  }
  tensor::init_kaiming_uniform(weight_.value, rng, geometry_.patch_size());
  if (with_bias_) {
    const float bound = 1.0f / std::sqrt(static_cast<float>(geometry_.patch_size()));
    tensor::init_uniform(bias_.value, rng, -bound, bound);
  }
}

std::size_t Conv2d::samples_per_chunk(std::size_t batch) const noexcept {
  const std::size_t per_sample = geometry_.patch_size() * geometry_.out_h() * geometry_.out_w();
  const std::size_t fit = std::max<std::size_t>(1, kMaxColumnFloats / per_sample);
  return std::min(batch, fit);
}

tensor::Tensor Conv2d::forward(const tensor::Tensor& input) {
  const auto& g = geometry_;
  if (input.rank() != 4 || input.dim(1) != g.in_channels || input.dim(2) != g.in_h ||
      input.dim(3) != g.in_w) {
    throw std::invalid_argument{"Conv2d::forward: input shape mismatch, got " +
                                input.shape_string()};
  }
  cached_input_ = input;
  const std::size_t batch = input.dim(0);
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t pixels = oh * ow;
  const std::size_t patch = g.patch_size();
  const std::size_t image_size = g.in_channels * g.in_h * g.in_w;
  const std::size_t chunk = samples_per_chunk(batch);
  tensor::Tensor out{{batch, out_channels_, oh, ow}};
  for (std::size_t s0 = 0; s0 < batch; s0 += chunk) {
    const std::size_t cs = std::min(chunk, batch - s0);
    const std::size_t cols = cs * pixels;
    scratch_columns_.resize(patch * cols);
    tensor::im2col_batch(input.data().subspan(s0 * image_size, cs * image_size), g, cs,
                         scratch_columns_.data());
    scratch_out_mat_.resize(out_channels_ * cols);
    // One GEMM for the whole chunk: W[oc, patch] * cols[patch, cs*pixels].
    tensor::matmul(weight_.value.raw(), scratch_columns_.data(), scratch_out_mat_.data(),
                   out_channels_, patch, cols);
    // Scatter [oc, sample, pixel] -> [sample, oc, pixel], adding the bias.
    for (std::size_t s = 0; s < cs; ++s) {
      float* dst = out.raw() + (s0 + s) * out_channels_ * pixels;
      for (std::size_t oc = 0; oc < out_channels_; ++oc) {
        const float* src = scratch_out_mat_.data() + oc * cols + s * pixels;
        const float b = with_bias_ ? bias_.value[oc] : 0.0f;
        float* row = dst + oc * pixels;
        for (std::size_t p = 0; p < pixels; ++p) row[p] = src[p] + b;
      }
    }
  }
  return out;
}

tensor::Tensor Conv2d::backward(const tensor::Tensor& grad_output) {
  const auto& g = geometry_;
  const std::size_t batch = cached_input_.dim(0);
  const std::size_t oh = g.out_h(), ow = g.out_w();
  const std::size_t pixels = oh * ow;
  if (grad_output.rank() != 4 || grad_output.dim(0) != batch ||
      grad_output.dim(1) != out_channels_ || grad_output.dim(2) != oh ||
      grad_output.dim(3) != ow) {
    throw std::invalid_argument{"Conv2d::backward: gradient shape mismatch"};
  }
  const std::size_t patch = g.patch_size();
  const std::size_t image_size = g.in_channels * g.in_h * g.in_w;
  const std::size_t chunk = samples_per_chunk(batch);
  tensor::Tensor grad_input{cached_input_.shape()};
  for (std::size_t s0 = 0; s0 < batch; s0 += chunk) {
    const std::size_t cs = std::min(chunk, batch - s0);
    const std::size_t cols = cs * pixels;
    // Gather dY [sample, oc, pixel] -> [oc, sample, pixel] so the chunk is
    // one [oc, cs*pixels] matrix.
    scratch_grad_mat_.resize(out_channels_ * cols);
    for (std::size_t s = 0; s < cs; ++s) {
      const float* go = grad_output.raw() + (s0 + s) * out_channels_ * pixels;
      for (std::size_t oc = 0; oc < out_channels_; ++oc) {
        std::copy(go + oc * pixels, go + (oc + 1) * pixels,
                  scratch_grad_mat_.data() + oc * cols + s * pixels);
      }
    }
    scratch_columns_.resize(patch * cols);
    tensor::im2col_batch(cached_input_.data().subspan(s0 * image_size, cs * image_size), g,
                         cs, scratch_columns_.data());
    // dW[oc, patch] += dY[oc, cs*pixels] * cols[patch, cs*pixels]^T — one
    // GEMM per chunk into persistent scratch, then accumulated.
    scratch_dw_.resize(out_channels_ * patch);
    tensor::matmul_trans_b(scratch_grad_mat_.data(), scratch_columns_.data(),
                           scratch_dw_.data(), out_channels_, cols, patch);
    tensor::axpy(1.0f, scratch_dw_, weight_.grad.data());
    if (with_bias_) {
      for (std::size_t oc = 0; oc < out_channels_; ++oc) {
        const float* row = scratch_grad_mat_.data() + oc * cols;
        float acc = 0.0f;
        for (std::size_t p = 0; p < cols; ++p) acc += row[p];
        bias_.grad[oc] += acc;
      }
    }
    // dcols[patch, cs*pixels] = W^T[patch, oc] * dY[oc, cs*pixels].
    scratch_grad_cols_.resize(patch * cols);
    tensor::matmul_trans_a(weight_.value.raw(), scratch_grad_mat_.data(),
                           scratch_grad_cols_.data(), patch, out_channels_, cols);
    tensor::col2im_batch_accumulate(scratch_grad_cols_.data(), g, cs,
                                    grad_input.data().subspan(s0 * image_size,
                                                              cs * image_size));
  }
  return grad_input;
}

std::vector<Parameter*> Conv2d::parameters() {
  if (with_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace fedguard::nn
