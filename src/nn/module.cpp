#include "nn/module.hpp"

namespace fedguard::nn {

void Module::zero_grad() {
  for (Parameter* p : parameters()) p->grad.zero();
}

std::size_t Module::parameter_count() {
  std::size_t total = 0;
  for (Parameter* p : parameters()) total += p->size();
  return total;
}

std::size_t Module::weight_parameter_count() {
  std::size_t total = 0;
  for (Parameter* p : parameters()) {
    if (p->name.find("bias") == std::string::npos) total += p->size();
  }
  return total;
}

}  // namespace fedguard::nn
