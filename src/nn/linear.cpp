#include "nn/linear.hpp"
#include <cmath>

#include <stdexcept>

#include "tensor/init.hpp"
#include "tensor/ops.hpp"

namespace fedguard::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng,
               bool with_bias)
    : in_features_{in_features},
      out_features_{out_features},
      with_bias_{with_bias},
      weight_{{out_features, in_features}, "linear.weight"},
      bias_{{out_features}, "linear.bias"} {
  tensor::init_kaiming_uniform(weight_.value, rng, in_features);
  if (with_bias_) {
    // PyTorch-style bias init: U(-1/sqrt(fan_in), 1/sqrt(fan_in)).
    const float bound =
        1.0f / std::sqrt(static_cast<float>(in_features > 0 ? in_features : 1));
    tensor::init_uniform(bias_.value, rng, -bound, bound);
  }
}

tensor::Tensor Linear::forward(const tensor::Tensor& input) {
  if (input.rank() != 2 || input.dim(1) != in_features_) {
    throw std::invalid_argument{"Linear::forward: expected [N, " +
                                std::to_string(in_features_) + "], got " +
                                input.shape_string()};
  }
  cached_input_ = input;
  tensor::Tensor out{{input.dim(0), out_features_}};
  tensor::matmul_trans_b(input, weight_.value, out);
  if (with_bias_) tensor::add_bias_rows(out, bias_.value.data());
  return out;
}

tensor::Tensor Linear::backward(const tensor::Tensor& grad_output) {
  if (grad_output.rank() != 2 || grad_output.dim(1) != out_features_ ||
      grad_output.dim(0) != cached_input_.dim(0)) {
    throw std::invalid_argument{"Linear::backward: gradient shape mismatch"};
  }
  // dW [out, in] += dY^T [out, N] * X [N, in]
  tensor::matmul_trans_a_accumulate(grad_output, cached_input_, weight_.grad);
  if (with_bias_) tensor::add_rows_into(grad_output, bias_.grad.data());
  // dX [N, in] = dY [N, out] * W [out, in]
  tensor::Tensor grad_input{{grad_output.dim(0), in_features_}};
  tensor::matmul(grad_output, weight_.value, grad_input);
  return grad_input;
}

std::vector<Parameter*> Linear::parameters() {
  if (with_bias_) return {&weight_, &bias_};
  return {&weight_};
}

}  // namespace fedguard::nn
