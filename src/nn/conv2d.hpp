#pragma once
// 2-D convolution (stride 1, square kernel, symmetric zero padding) via
// batched im2col + GEMM: the whole batch (in bounded-size chunks) is lowered
// into one column matrix so forward and backward each run one large GEMM per
// chunk instead of `batch` small ones. Matches the paper's classifier layers
// (5x5 kernels with padding 2, Table II).

#include <vector>

#include "nn/module.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace fedguard::nn {

class Conv2d final : public Module {
 public:
  /// Input [N, in_channels, in_h, in_w] -> output
  /// [N, out_channels, in_h+2*padding-kernel+1, in_w+2*padding-kernel+1].
  Conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t in_h, std::size_t in_w, util::Rng& rng, std::size_t padding = 0,
         bool with_bias = true);

  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;

  [[nodiscard]] std::string name() const override { return "Conv2d"; }
  [[nodiscard]] std::size_t out_channels() const noexcept { return out_channels_; }
  [[nodiscard]] const tensor::ConvGeometry& geometry() const noexcept { return geometry_; }

 private:
  /// Samples per batched-GEMM chunk, sized so the column matrix stays within
  /// a fixed memory budget.
  [[nodiscard]] std::size_t samples_per_chunk(std::size_t batch) const noexcept;

  std::size_t out_channels_;
  bool with_bias_;
  tensor::ConvGeometry geometry_;
  Parameter weight_;  // [out_channels, in_channels*k*k]
  Parameter bias_;    // [out_channels]
  tensor::Tensor cached_input_;  // [N, C, H, W]
  // Persistent scratch reused across calls (resize keeps capacity):
  std::vector<float> scratch_columns_;   // [patch, chunk*pixels] im2col matrix
  std::vector<float> scratch_out_mat_;   // [out_c, chunk*pixels] forward GEMM result
  std::vector<float> scratch_grad_mat_;  // [out_c, chunk*pixels] gathered dY
  std::vector<float> scratch_grad_cols_; // [patch, chunk*pixels] column gradients
  std::vector<float> scratch_dw_;        // [out_c, patch] per-call weight gradient
};

}  // namespace fedguard::nn
