#pragma once
// Flatten [N, ...] -> [N, prod(...)], preserving the batch axis.

#include "nn/module.hpp"

namespace fedguard::nn {

class Flatten final : public Module {
 public:
  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::string name() const override { return "Flatten"; }

 private:
  std::vector<std::size_t> input_shape_;
};

}  // namespace fedguard::nn
