#pragma once
// Fully-connected layer: y = x W^T + b with x [N, in], W [out, in], b [out].

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace fedguard::nn {

class Linear final : public Module {
 public:
  /// Kaiming-uniform weight init (fan_in = in_features), zero bias.
  Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng,
         bool with_bias = true);

  tensor::Tensor forward(const tensor::Tensor& input) override;
  tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;

  [[nodiscard]] std::string name() const override { return "Linear"; }
  [[nodiscard]] std::size_t in_features() const noexcept { return in_features_; }
  [[nodiscard]] std::size_t out_features() const noexcept { return out_features_; }

  [[nodiscard]] Parameter& weight() noexcept { return weight_; }
  [[nodiscard]] Parameter& bias() noexcept { return bias_; }
  [[nodiscard]] bool has_bias() const noexcept { return with_bias_; }

 private:
  std::size_t in_features_;
  std::size_t out_features_;
  bool with_bias_;
  Parameter weight_;  // [out, in]
  Parameter bias_;    // [out]
  tensor::Tensor cached_input_;
};

}  // namespace fedguard::nn
