#include "nn/parameter_vector.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/serialize.hpp"

namespace fedguard::nn {

namespace {

/// Shared walk for the parameter/gradient span exports: both must fill `out`
/// exactly, in declaration order.
template <typename TensorOf>
void copy_flat_to(Module& module, std::span<float> out, TensorOf&& tensor_of,
                  const char* too_short, const char* size_mismatch) {
  std::size_t offset = 0;
  for (Parameter* p : module.parameters()) {
    const auto data = tensor_of(p).data();
    if (offset + data.size() > out.size()) {
      throw std::invalid_argument{too_short};
    }
    std::copy(data.begin(), data.end(), out.begin() + static_cast<std::ptrdiff_t>(offset));
    offset += data.size();
  }
  if (offset != out.size()) {
    throw std::invalid_argument{size_mismatch};
  }
}

}  // namespace

std::vector<float> flatten_parameters(Module& module) {
  std::vector<float> flat;
  flat.reserve(module.parameter_count());
  for (Parameter* p : module.parameters()) {
    const auto data = p->value.data();
    flat.insert(flat.end(), data.begin(), data.end());
  }
  return flat;
}

void copy_parameters_to(Module& module, std::span<float> out) {
  copy_flat_to(module, out, [](Parameter* p) -> auto& { return p->value; },
               "copy_parameters_to: span too short", "copy_parameters_to: span size mismatch");
}

void unflatten_parameters(Module& module, std::span<const float> flat) {
  std::size_t offset = 0;
  for (Parameter* p : module.parameters()) {
    const std::size_t count = p->size();
    if (offset + count > flat.size()) {
      throw std::invalid_argument{"unflatten_parameters: vector too short"};
    }
    std::copy_n(flat.data() + offset, count, p->value.raw());
    offset += count;
  }
  if (offset != flat.size()) {
    throw std::invalid_argument{"unflatten_parameters: vector too long"};
  }
}

std::vector<float> flatten_gradients(Module& module) {
  std::vector<float> flat;
  flat.reserve(module.parameter_count());
  for (Parameter* p : module.parameters()) {
    const auto data = p->grad.data();
    flat.insert(flat.end(), data.begin(), data.end());
  }
  return flat;
}

void copy_gradients_to(Module& module, std::span<float> out) {
  copy_flat_to(module, out, [](Parameter* p) -> auto& { return p->grad; },
               "copy_gradients_to: span too short", "copy_gradients_to: span size mismatch");
}

std::size_t parameter_wire_bytes(std::size_t count) noexcept {
  return util::f32_vector_wire_size(count);
}

}  // namespace fedguard::nn
