#include "nn/parameter_vector.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/serialize.hpp"

namespace fedguard::nn {

std::vector<float> flatten_parameters(Module& module) {
  std::vector<float> flat;
  flat.reserve(module.parameter_count());
  for (Parameter* p : module.parameters()) {
    const auto data = p->value.data();
    flat.insert(flat.end(), data.begin(), data.end());
  }
  return flat;
}

void unflatten_parameters(Module& module, std::span<const float> flat) {
  std::size_t offset = 0;
  for (Parameter* p : module.parameters()) {
    const std::size_t count = p->size();
    if (offset + count > flat.size()) {
      throw std::invalid_argument{"unflatten_parameters: vector too short"};
    }
    std::copy_n(flat.data() + offset, count, p->value.raw());
    offset += count;
  }
  if (offset != flat.size()) {
    throw std::invalid_argument{"unflatten_parameters: vector too long"};
  }
}

std::vector<float> flatten_gradients(Module& module) {
  std::vector<float> flat;
  flat.reserve(module.parameter_count());
  for (Parameter* p : module.parameters()) {
    const auto data = p->grad.data();
    flat.insert(flat.end(), data.begin(), data.end());
  }
  return flat;
}

std::size_t parameter_wire_bytes(std::size_t count) noexcept {
  return util::f32_vector_wire_size(count);
}

}  // namespace fedguard::nn
