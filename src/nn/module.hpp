#pragma once
// Layer abstraction with explicit reverse-mode differentiation.
//
// Each Module implements forward() and backward(); forward() caches whatever
// it needs for the gradient pass (inputs, masks, activations). backward()
// accumulates parameter gradients into Parameter::grad and returns the
// gradient with respect to the module input, so containers can chain layers.
// This is a deliberate alternative to tape-based autograd: the architectures
// in the paper are static feed-forward stacks, and the manual scheme has no
// graph bookkeeping overhead.

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace fedguard::nn {

/// A trainable tensor together with its gradient accumulator.
struct Parameter {
  tensor::Tensor value;
  tensor::Tensor grad;
  std::string name;

  Parameter() = default;
  Parameter(std::vector<std::size_t> shape, std::string parameter_name)
      : value{shape}, grad{std::move(shape)}, name{std::move(parameter_name)} {}

  [[nodiscard]] std::size_t size() const noexcept { return value.size(); }
};

class Module {
 public:
  virtual ~Module() = default;

  /// Compute the module output for `input`; caches state for backward().
  virtual tensor::Tensor forward(const tensor::Tensor& input) = 0;

  /// Propagate `grad_output` (gradient of the loss w.r.t. this module's
  /// output) back through the cached forward state. Accumulates into each
  /// Parameter::grad and returns the gradient w.r.t. the module input.
  virtual tensor::Tensor backward(const tensor::Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers).
  [[nodiscard]] virtual std::vector<Parameter*> parameters() { return {}; }

  /// Toggle train/eval behaviour (dropout etc.). Default: no-op.
  virtual void set_training(bool training) { training_ = training; }
  [[nodiscard]] bool training() const noexcept { return training_; }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Zero all parameter gradients.
  void zero_grad();

  /// Total trainable scalar count.
  [[nodiscard]] std::size_t parameter_count();
  /// Scalar count of weight tensors only (excludes biases); Table II of the
  /// paper reports weight-only counts.
  [[nodiscard]] std::size_t weight_parameter_count();

 protected:
  bool training_ = true;
};

}  // namespace fedguard::nn
