#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace fedguard::nn {

LossResult softmax_cross_entropy(const tensor::Tensor& logits, std::span<const int> labels) {
  if (logits.rank() != 2 || logits.dim(0) != labels.size()) {
    throw std::invalid_argument{"softmax_cross_entropy: shape mismatch"};
  }
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  tensor::Tensor probs;
  tensor::softmax_rows(logits, probs);

  double total_loss = 0.0;
  LossResult out;
  out.grad = probs;  // grad = (softmax - onehot) / N
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t n = 0; n < batch; ++n) {
    const int label = labels[n];
    if (label < 0 || static_cast<std::size_t>(label) >= classes) {
      throw std::invalid_argument{"softmax_cross_entropy: label out of range"};
    }
    const float p = std::max(probs.at(n, static_cast<std::size_t>(label)), 1e-12f);
    total_loss -= std::log(p);
    out.grad.at(n, static_cast<std::size_t>(label)) -= 1.0f;
  }
  tensor::scale(out.grad.data(), inv_batch);
  out.value = static_cast<float>(total_loss / static_cast<double>(batch));
  return out;
}

std::size_t count_correct(const tensor::Tensor& logits, std::span<const int> labels) {
  if (logits.rank() != 2 || logits.dim(0) != labels.size()) {
    throw std::invalid_argument{"count_correct: shape mismatch"};
  }
  std::size_t correct = 0;
  for (std::size_t n = 0; n < logits.dim(0); ++n) {
    if (tensor::argmax(logits.row(n)) == static_cast<std::size_t>(labels[n])) ++correct;
  }
  return correct;
}

LossResult binary_cross_entropy(const tensor::Tensor& predictions,
                                const tensor::Tensor& targets) {
  if (!predictions.same_shape(targets) || predictions.rank() != 2) {
    throw std::invalid_argument{"binary_cross_entropy: shape mismatch"};
  }
  const std::size_t batch = predictions.dim(0);
  const float inv_batch = 1.0f / static_cast<float>(batch);
  constexpr float kEps = 1e-7f;

  LossResult out;
  out.grad = tensor::Tensor{predictions.shape()};
  double total = 0.0;
  const auto p = predictions.data();
  const auto t = targets.data();
  auto g = out.grad.data();
  for (std::size_t i = 0; i < p.size(); ++i) {
    const float pc = std::clamp(p[i], kEps, 1.0f - kEps);
    total -= t[i] * std::log(pc) + (1.0f - t[i]) * std::log(1.0f - pc);
    g[i] = inv_batch * (pc - t[i]) / (pc * (1.0f - pc));
  }
  out.value = static_cast<float>(total) * inv_batch;
  return out;
}

GaussianKlResult gaussian_kl(const tensor::Tensor& mu, const tensor::Tensor& logvar) {
  if (!mu.same_shape(logvar) || mu.rank() != 2) {
    throw std::invalid_argument{"gaussian_kl: shape mismatch"};
  }
  const std::size_t batch = mu.dim(0);
  const float inv_batch = 1.0f / static_cast<float>(batch);
  GaussianKlResult out;
  out.grad_mu = tensor::Tensor{mu.shape()};
  out.grad_logvar = tensor::Tensor{mu.shape()};
  double total = 0.0;
  const auto m = mu.data();
  const auto lv = logvar.data();
  auto gm = out.grad_mu.data();
  auto glv = out.grad_logvar.data();
  for (std::size_t i = 0; i < m.size(); ++i) {
    const float var = std::exp(lv[i]);
    total += -0.5 * (1.0f + lv[i] - m[i] * m[i] - var);
    gm[i] = m[i] * inv_batch;
    glv[i] = 0.5f * (var - 1.0f) * inv_batch;
  }
  out.value = static_cast<float>(total) * inv_batch;
  return out;
}

LossResult mean_squared_error(const tensor::Tensor& predictions,
                              const tensor::Tensor& targets) {
  if (!predictions.same_shape(targets)) {
    throw std::invalid_argument{"mean_squared_error: shape mismatch"};
  }
  LossResult out;
  out.grad = tensor::Tensor{predictions.shape()};
  const auto p = predictions.data();
  const auto t = targets.data();
  auto g = out.grad.data();
  const float inv_count = 1.0f / static_cast<float>(p.size());
  double total = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const float d = p[i] - t[i];
    total += static_cast<double>(d) * d;
    g[i] = 2.0f * d * inv_count;
  }
  out.value = static_cast<float>(total) * inv_count;
  return out;
}

}  // namespace fedguard::nn
