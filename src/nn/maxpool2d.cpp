#include "nn/maxpool2d.hpp"

#include <stdexcept>

namespace fedguard::nn {

MaxPool2d::MaxPool2d(std::size_t kernel) : kernel_{kernel} {
  if (kernel == 0) throw std::invalid_argument{"MaxPool2d: kernel must be positive"};
}

tensor::Tensor MaxPool2d::forward(const tensor::Tensor& input) {
  if (input.rank() != 4) {
    throw std::invalid_argument{"MaxPool2d::forward: expected [N, C, H, W], got " +
                                input.shape_string()};
  }
  const std::size_t batch = input.dim(0), channels = input.dim(1);
  const std::size_t in_h = input.dim(2), in_w = input.dim(3);
  const std::size_t out_h = in_h / kernel_, out_w = in_w / kernel_;
  if (out_h == 0 || out_w == 0) {
    throw std::invalid_argument{"MaxPool2d::forward: input smaller than kernel"};
  }
  input_shape_ = input.shape();
  output_shape_ = {batch, channels, out_h, out_w};
  tensor::Tensor out{output_shape_};
  argmax_.assign(out.size(), 0);

  const float* src = input.raw();
  float* dst = out.raw();
  std::size_t out_index = 0;
  for (std::size_t n = 0; n < batch; ++n) {
    for (std::size_t c = 0; c < channels; ++c) {
      const std::size_t plane = (n * channels + c) * in_h * in_w;
      for (std::size_t oy = 0; oy < out_h; ++oy) {
        for (std::size_t ox = 0; ox < out_w; ++ox) {
          std::size_t best_index = plane + (oy * kernel_) * in_w + ox * kernel_;
          float best = src[best_index];
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const std::size_t idx =
                  plane + (oy * kernel_ + ky) * in_w + (ox * kernel_ + kx);
              if (src[idx] > best) {
                best = src[idx];
                best_index = idx;
              }
            }
          }
          dst[out_index] = best;
          argmax_[out_index] = best_index;
          ++out_index;
        }
      }
    }
  }
  return out;
}

tensor::Tensor MaxPool2d::backward(const tensor::Tensor& grad_output) {
  if (grad_output.shape() != output_shape_) {
    throw std::invalid_argument{"MaxPool2d::backward: gradient shape mismatch"};
  }
  tensor::Tensor grad_input{input_shape_};
  float* dst = grad_input.raw();
  const float* src = grad_output.raw();
  for (std::size_t i = 0; i < argmax_.size(); ++i) dst[argmax_[i]] += src[i];
  return grad_input;
}

}  // namespace fedguard::nn
