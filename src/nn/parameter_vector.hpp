#pragma once
// Flattening between a module's parameter list and a single contiguous float
// vector. This is the wire format of the federation: clients upload flat ψ
// (classifier) and θ (CVAE decoder) vectors, attacks perturb them, and the
// aggregation operators treat them as points in R^d.

#include <span>
#include <vector>

#include "nn/module.hpp"

namespace fedguard::nn {

/// Concatenate all parameter values of `module` in declaration order.
[[nodiscard]] std::vector<float> flatten_parameters(Module& module);

/// Write the module's parameter values (declaration order) into `out`, whose
/// size must equal parameter_count() exactly. The zero-copy round pipeline
/// uses this to fill arena rows in place instead of allocating via
/// flatten_parameters.
void copy_parameters_to(Module& module, std::span<float> out);

/// Write `flat` back into the module's parameters; size must match exactly.
void unflatten_parameters(Module& module, std::span<const float> flat);

/// Concatenate all parameter *gradients* in declaration order.
[[nodiscard]] std::vector<float> flatten_gradients(Module& module);

/// Span form of flatten_gradients; `out` size must match exactly.
void copy_gradients_to(Module& module, std::span<float> out);

/// Serialized wire size (bytes) of a flat parameter vector of `count` floats,
/// including the length prefix. Used by the traffic meter (Table V).
[[nodiscard]] std::size_t parameter_wire_bytes(std::size_t count) noexcept;

}  // namespace fedguard::nn
