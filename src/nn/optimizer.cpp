#include "nn/optimizer.hpp"

#include <cmath>

namespace fedguard::nn {

void Optimizer::zero_grad() {
  for (Parameter* p : parameters_) p->grad.zero();
}

Sgd::Sgd(std::vector<Parameter*> parameters, float learning_rate, float momentum,
         float weight_decay)
    : Optimizer{std::move(parameters)},
      learning_rate_{learning_rate},
      momentum_{momentum},
      weight_decay_{weight_decay} {
  if (momentum_ != 0.0f) {
    velocity_.reserve(parameters_.size());
    for (const Parameter* p : parameters_) {
      velocity_.emplace_back(p->value.shape());
    }
  }
}

void Sgd::step() {
  for (std::size_t k = 0; k < parameters_.size(); ++k) {
    Parameter& p = *parameters_[k];
    auto value = p.value.data();
    auto grad = p.grad.data();
    if (momentum_ != 0.0f) {
      auto vel = velocity_[k].data();
      for (std::size_t i = 0; i < value.size(); ++i) {
        const float g = grad[i] + weight_decay_ * value[i];
        vel[i] = momentum_ * vel[i] + g;
        value[i] -= learning_rate_ * vel[i];
      }
    } else {
      for (std::size_t i = 0; i < value.size(); ++i) {
        const float g = grad[i] + weight_decay_ * value[i];
        value[i] -= learning_rate_ * g;
      }
    }
  }
}

Adam::Adam(std::vector<Parameter*> parameters, float learning_rate, float beta1, float beta2,
           float epsilon, float weight_decay)
    : Optimizer{std::move(parameters)},
      learning_rate_{learning_rate},
      beta1_{beta1},
      beta2_{beta2},
      epsilon_{epsilon},
      weight_decay_{weight_decay} {
  m_.reserve(parameters_.size());
  v_.reserve(parameters_.size());
  for (const Parameter* p : parameters_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++step_count_;
  const float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  const float alpha = learning_rate_ * std::sqrt(bias2) / bias1;
  for (std::size_t k = 0; k < parameters_.size(); ++k) {
    Parameter& p = *parameters_[k];
    auto value = p.value.data();
    auto grad = p.grad.data();
    auto m = m_[k].data();
    auto v = v_[k].data();
    for (std::size_t i = 0; i < value.size(); ++i) {
      const float g = grad[i] + weight_decay_ * value[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
      value[i] -= alpha * m[i] / (std::sqrt(v[i]) + epsilon_);
    }
  }
}

}  // namespace fedguard::nn
