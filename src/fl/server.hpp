#pragma once
// Federated server (Alg. 1 lines 14-20): model initialization, per-round
// uniform sampling of m clients, parallel execution of client work items,
// aggregation through the configured strategy, and the server-learning-rate
// update ψ0 <- ψ0 + η (ψ_agg - ψ0) that Fig. 5 ablates.
//
// Traffic accounting (Table V): every round the server uploads ψ0 to each of
// the m sampled clients and downloads their ψ (plus θ when the strategy
// requests decoders). Transfers are charged at serialized wire size.

#include <cstdint>
#include <functional>
#include <memory>

#include "data/dataset.hpp"
#include "defenses/aggregation.hpp"
#include "fl/client.hpp"
#include "fl/metrics.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "util/serialize.hpp"

namespace fedguard::fl {

struct ServerConfig {
  std::size_t clients_per_round = 50;  // m (paper: 50 of N=100)
  std::size_t rounds = 50;             // R
  float server_learning_rate = 1.0f;   // η (Fig. 5: 0.3 for stability)
  std::size_t eval_batch_size = 256;   // test-set evaluation batching
  std::uint64_t seed = 1;
  /// Record per-class test recall each round (targeted-attack analysis).
  bool track_per_class_accuracy = false;
  /// Probability that a sampled client fails to respond in a round
  /// (straggler / dropout simulation). Its traffic is not charged.
  double straggler_probability = 0.0;
  /// Deterministic straggler test hook: when set, (client_index, round) ->
  /// "fails this round" replaces the probabilistic draw — and consumes no
  /// server rng — so a remote fault plan can be replayed in-process with
  /// identical sampling sequences and responder sets.
  std::function<bool(std::size_t, std::size_t)> straggler_predicate;
  /// ψ-upload wire codec simulated in-process: each collected ψ row is
  /// quantize-roundtripped with exactly the arithmetic of the socket
  /// deployment's encoder/decoder, so local and remote runs see bit-identical
  /// (lossy) updates, and the traffic meter charges the quantized wire size.
  util::WireCodec psi_codec = util::WireCodec::Fp32;
  /// Elements per q8 quantization chunk (ignored by other codecs).
  std::size_t psi_chunk = util::kDefaultQ8ChunkSize;
  /// Two-tier topology simulated in-process: the sampled updates are
  /// partitioned into per-shard cohorts by client ownership (client c of N
  /// belongs to shard floor(c*S/N), exactly net::HierarchicalServer's
  /// partition), each cohort runs AggregationStrategy::partial_aggregate_into,
  /// and the partials merge at the root. 1 = classic single-tier aggregation.
  /// FedAvg merges exactly; selectors (Krum/FedCPA/FedGuard) select per shard
  /// — docs/SHARDING.md quantifies the robustness cost.
  std::size_t shards = 1;
};

class Server {
 public:
  /// `clients`, `strategy` and `test_set` must outlive the server.
  Server(ServerConfig config, std::vector<std::unique_ptr<Client>>& clients,
         defenses::AggregationStrategy& strategy, const data::Dataset& test_set,
         models::ClassifierArch arch, models::ImageGeometry geometry);

  /// Run all configured rounds and return the full history.
  [[nodiscard]] RunHistory run();

  /// Execute a single federated round (exposed for tests / step-wise use).
  [[nodiscard]] RoundRecord run_round(std::size_t round);

  [[nodiscard]] std::span<const float> global_parameters() const noexcept {
    return global_parameters_;
  }
  /// Accuracy of the current global model on the held-out test set.
  [[nodiscard]] double evaluate_global();
  /// Per-class recall of the current global model on the test set.
  [[nodiscard]] std::vector<double> evaluate_per_class();

  /// Persist the current global parameter vector (resume long runs / deploy
  /// the trained model). Throws std::runtime_error on I/O failure.
  void save_global(const std::string& path) const;
  /// Restore a global parameter vector saved by save_global; dimension must
  /// match the configured architecture.
  void load_global(const std::string& path);

 private:
  ServerConfig config_;
  std::vector<std::unique_ptr<Client>>& clients_;
  defenses::AggregationStrategy& strategy_;
  const data::Dataset& test_set_;
  models::ClassifierArch arch_;
  models::ImageGeometry geometry_;
  std::vector<float> global_parameters_;
  std::unique_ptr<models::Classifier> eval_classifier_;
  util::Rng rng_;
  // Round-persistent scratch: the arena and index/result buffers keep their
  // capacity across rounds, so a steady-state round performs no heap
  // allocation in this loop (strategies own their own scratch likewise).
  defenses::UpdateMatrix arena_;
  defenses::AggregationResult result_;
  std::vector<defenses::ShardPartial> partials_;           // shards > 1
  std::vector<std::vector<std::size_t>> cohort_slots_;     // arena rows per shard
  std::vector<std::size_t> sampled_;
  std::vector<std::size_t> responders_;
  std::vector<std::size_t> eval_indices_;
  // Registry instruments (docs/OBSERVABILITY.md §fl_*). RoundRecord's traffic
  // and straggler fields are per-round deltas of these counters, so Table V
  // and the metrics exposition can never disagree.
  obs::Counter rounds_total_;
  obs::Counter upload_bytes_total_;
  obs::Counter download_bytes_total_;
  obs::Counter sampled_clients_total_;
  obs::Counter stragglers_total_;
  // Detection tallies against ground truth: the scenario sweep derives
  // attacker-ejection precision/recall from deltas of these three.
  obs::Counter sampled_malicious_total_;
  obs::Counter rejected_malicious_total_;
  obs::Counter rejected_benign_total_;
  obs::Histogram round_seconds_;
  obs::Gauge arena_capacity_bytes_;
};

}  // namespace fedguard::fl
