#include "fl/server.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/parameter_vector.hpp"
#include "obs/exporter.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/serialize.hpp"

namespace fedguard::fl {

Server::Server(ServerConfig config, std::vector<std::unique_ptr<Client>>& clients,
               defenses::AggregationStrategy& strategy, const data::Dataset& test_set,
               models::ClassifierArch arch, models::ImageGeometry geometry)
    : config_{config},
      clients_{clients},
      strategy_{strategy},
      test_set_{test_set},
      arch_{arch},
      geometry_{geometry},
      eval_classifier_{std::make_unique<models::Classifier>(arch, geometry, config.seed)},
      rng_{config.seed} {
  if (clients_.empty()) throw std::invalid_argument{"Server: no clients"};
  if (config_.clients_per_round == 0 || config_.clients_per_round > clients_.size()) {
    throw std::invalid_argument{"Server: clients_per_round out of range"};
  }
  auto& registry = obs::Registry::global();
  rounds_total_ = registry.counter("fl_rounds_total");
  upload_bytes_total_ = registry.counter("fl_upload_bytes_total");
  download_bytes_total_ = registry.counter("fl_download_bytes_total");
  sampled_clients_total_ = registry.counter("fl_sampled_clients_total");
  stragglers_total_ = registry.counter("fl_stragglers_total");
  sampled_malicious_total_ = registry.counter("fl_sampled_malicious_total");
  rejected_malicious_total_ = registry.counter("fl_rejected_malicious_total");
  rejected_benign_total_ = registry.counter("fl_rejected_benign_total");
  round_seconds_ = registry.histogram("fl_round_seconds");
  arena_capacity_bytes_ = registry.gauge("obs_arena_capacity_bytes");
  // Model initialization (Alg. 1 line 15): ψ0 from the eval classifier's init.
  global_parameters_ = eval_classifier_->parameters_flat();
}

double Server::evaluate_global() {
  eval_classifier_->load_parameters_flat(global_parameters_);
  const std::size_t total = test_set_.size();
  if (total == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t start = 0; start < total; start += config_.eval_batch_size) {
    const std::size_t n = std::min(config_.eval_batch_size, total - start);
    eval_indices_.resize(n);
    for (std::size_t i = 0; i < n; ++i) eval_indices_[i] = start + i;
    const data::Dataset::Batch batch = test_set_.gather(eval_indices_);
    correct += static_cast<std::size_t>(
        eval_classifier_->evaluate_accuracy(batch.images, batch.labels) *
            static_cast<double>(n) +
        0.5);
  }
  return static_cast<double>(correct) / static_cast<double>(total);
}

RoundRecord Server::run_round(std::size_t round) {
  // Round timing and span durations share obs::now_ns() (one steady clock),
  // so Table V and the trace can never disagree by clock domain.
  const std::uint64_t round_start_ns = obs::now_ns();
  // Federation-wide correlation id for this round's spans (same derivation as
  // the socket servers, so simulator and deployment traces line up by round).
  obs::set_trace_context(
      {obs::make_trace_id(config_.seed, round), 0, round});
  FEDGUARD_TRACE_SPAN("round", "round:" + std::to_string(round));
  RoundRecord record;
  record.round = round;
  // RoundRecord traffic/straggler fields are deltas of the registry counters
  // over this round; only this (server) thread increments them.
  const std::uint64_t upload0 = upload_bytes_total_.value();
  const std::uint64_t download0 = download_bytes_total_.value();
  const std::uint64_t stragglers0 = stragglers_total_.value();

  auto finalize = [&] {
    record.server_upload_bytes = upload_bytes_total_.value() - upload0;
    record.server_download_bytes = download_bytes_total_.value() - download0;
    record.stragglers = stragglers_total_.value() - stragglers0;
    record.test_accuracy = evaluate_global();
    if (config_.track_per_class_accuracy) record.per_class_accuracy = evaluate_per_class();
    const double seconds =
        static_cast<double>(obs::now_ns() - round_start_ns) * 1e-9;
    record.round_seconds = seconds;
    round_seconds_.observe(seconds);
    rounds_total_.add(1);
    obs::round_tick(round);
  };

  // Uniform sampling of m participating clients (Alg. 1 line 17).
  {
    FEDGUARD_TRACE_SPAN("round", "sample");
    rng_.sample_without_replacement(clients_.size(), config_.clients_per_round, sampled_);
  }
  record.sampled_clients = sampled_.size();
  sampled_clients_total_.add(sampled_.size());

  // Straggler simulation: sampled clients may fail to respond this round.
  // The predicate (a deterministic test hook) takes priority and consumes no
  // rng draws, keeping the sampling sequence identical to a run without it.
  if (config_.straggler_predicate || config_.straggler_probability > 0.0) {
    responders_.clear();
    for (const std::size_t id : sampled_) {
      const bool fails = config_.straggler_predicate
                             ? config_.straggler_predicate(id, round)
                             : rng_.bernoulli(config_.straggler_probability);
      if (!fails) responders_.push_back(id);
    }
    stragglers_total_.add(sampled_.size() - responders_.size());
    if (responders_.empty()) {
      // Nobody responded: the global model is unchanged this round.
      FEDGUARD_TRACE_SPAN("round", "eval");
      finalize();
      return record;
    }
    sampled_.swap(responders_);
  }

  // Client work items run concurrently on the pool (one process per client
  // on the paper's testbed), each writing its assigned arena row in place.
  {
    FEDGUARD_TRACE_SPAN("round", "collect");
    arena_.reset(sampled_.size(), global_parameters_.size(),
                 strategy_.wants_decoders() ? strategy_.decoder_parameter_count() : 0);
    arena_capacity_bytes_.set(static_cast<std::int64_t>(arena_.capacity_bytes()));
    parallel::parallel_for(parallel::global_pool(), 0, sampled_.size(), [&](std::size_t k) {
      const defenses::UpdateRow row = arena_.row(k);
      clients_[sampled_[k]]->run_round_into(global_parameters_, round, row);
      // Simulate the lossy ψ upload: the roundtrip helper shares its
      // arithmetic with write_q8_span / read_q8_into, so the aggregation sees
      // bit-identical updates to the socket deployment's. Fp32 is a no-op.
      util::quantize_roundtrip(config_.psi_codec, row.psi, config_.psi_chunk);
    });
  }
  const defenses::UpdateView updates{arena_};
  for (std::size_t k = 0; k < updates.count(); ++k) {
    if (updates.meta(k).truly_malicious) ++record.sampled_malicious;
  }
  sampled_malicious_total_.add(record.sampled_malicious);

  // Traffic accounting (Table V). The ψ0 broadcast always travels fp32; the
  // ψ uploads are charged at their codec's wire size.
  const std::size_t psi_wire = nn::parameter_wire_bytes(global_parameters_.size());
  upload_bytes_total_.add(sampled_.size() * psi_wire);
  std::size_t download =
      sampled_.size() * util::codec_span_wire_size(config_.psi_codec,
                                                   global_parameters_.size(),
                                                   config_.psi_chunk);
  if (strategy_.wants_decoders()) {
    for (std::size_t k = 0; k < updates.count(); ++k) {
      download += nn::parameter_wire_bytes(updates.meta(k).theta_count);
    }
  }
  download_bytes_total_.add(download);

  // Aggregate and apply the server learning rate.
  {
    FEDGUARD_TRACE_SPAN("round", "aggregate");
    defenses::AggregationContext context;
    context.round = round;
    context.global_parameters = global_parameters_;
    if (config_.shards <= 1) {
      strategy_.aggregate_into(context, updates, result_);
    } else {
      // Two-tier simulation: partition arena rows by the owner shard of the
      // client that produced them (floor(c*S/N) — net::HierarchicalServer's
      // partition), keeping sample order within each cohort, then partial-
      // aggregate per shard and merge at the root.
      const std::size_t population = clients_.size();
      cohort_slots_.resize(config_.shards);
      for (auto& cohort : cohort_slots_) cohort.clear();
      for (std::size_t k = 0; k < sampled_.size(); ++k) {
        cohort_slots_[sampled_[k] * config_.shards / population].push_back(k);
      }
      partials_.resize(config_.shards);
      for (std::size_t shard = 0; shard < config_.shards; ++shard) {
        if (cohort_slots_[shard].empty()) {
          partials_[shard].clear();  // merged as a skipped (empty) shard
          continue;
        }
        const defenses::UpdateView cohort{arena_, cohort_slots_[shard]};
        strategy_.partial_aggregate_into(context, cohort, shard, partials_[shard]);
      }
      strategy_.merge_partials_into(context, partials_, result_);
    }
    if (result_.parameters.size() != global_parameters_.size()) {
      throw std::runtime_error{"Server: strategy returned wrong parameter dimension"};
    }
    const float eta = config_.server_learning_rate;
    for (std::size_t i = 0; i < global_parameters_.size(); ++i) {
      global_parameters_[i] += eta * (result_.parameters[i] - global_parameters_[i]);
    }
  }

  // Detection bookkeeping.
  const defenses::DetectionStats detection =
      defenses::compute_detection_stats(updates, result_);
  record.rejected_clients = result_.rejected_clients.size();
  record.rejected_malicious = detection.true_positives;
  record.rejected_benign = detection.false_positives;
  rejected_malicious_total_.add(detection.true_positives);
  rejected_benign_total_.add(detection.false_positives);

  FEDGUARD_TRACE_SPAN("round", "eval");
  finalize();
  return record;
}

std::vector<double> Server::evaluate_per_class() {
  eval_classifier_->load_parameters_flat(global_parameters_);
  const std::size_t classes = geometry_.num_classes;
  std::vector<std::size_t> correct(classes, 0), total(classes, 0);
  std::vector<std::size_t> indices;
  for (std::size_t start = 0; start < test_set_.size(); start += config_.eval_batch_size) {
    const std::size_t n = std::min(config_.eval_batch_size, test_set_.size() - start);
    indices.resize(n);
    for (std::size_t i = 0; i < n; ++i) indices[i] = start + i;
    const data::Dataset::Batch batch = test_set_.gather(indices);
    const std::vector<double> recall =
        eval_classifier_->evaluate_per_class(batch.images, batch.labels);
    // Convert batch recalls back to counts to merge across batches.
    std::vector<std::size_t> batch_total(classes, 0);
    for (const int label : batch.labels) ++batch_total[static_cast<std::size_t>(label)];
    for (std::size_t c = 0; c < classes; ++c) {
      total[c] += batch_total[c];
      correct[c] += static_cast<std::size_t>(recall[c] * static_cast<double>(batch_total[c]) + 0.5);
    }
  }
  std::vector<double> out(classes, 0.0);
  for (std::size_t c = 0; c < classes; ++c) {
    if (total[c] > 0) out[c] = static_cast<double>(correct[c]) / static_cast<double>(total[c]);
  }
  return out;
}

void Server::save_global(const std::string& path) const {
  util::save_f32_vector(path, global_parameters_);
}

void Server::load_global(const std::string& path) {
  std::vector<float> loaded = util::load_f32_vector(path);
  if (loaded.size() != global_parameters_.size()) {
    throw std::runtime_error{"Server::load_global: dimension mismatch (" +
                             std::to_string(loaded.size()) + " vs " +
                             std::to_string(global_parameters_.size()) + ")"};
  }
  global_parameters_ = std::move(loaded);
}

RunHistory Server::run() {
  RunHistory history;
  history.strategy = strategy_.name();
  for (std::size_t round = 0; round < config_.rounds; ++round) {
    const RoundRecord record = run_round(round);
    util::log_info(
        "round %3zu | %-14s | acc %6.2f%% | sampled %zu (mal %zu) | rejected %zu "
        "(mal %zu, benign %zu) | %.2fs",
        round, history.strategy.c_str(), record.test_accuracy * 100.0,
        record.sampled_clients, record.sampled_malicious, record.rejected_clients,
        record.rejected_malicious, record.rejected_benign, record.round_seconds);
    history.rounds.push_back(record);
  }
  return history;
}

}  // namespace fedguard::fl
