#pragma once
// Federated client (Alg. 1 lines 22-27). A client owns a private copy of its
// data partition, trains the classifier for the configured number of local
// epochs each round, and (for FedGuard) trains a CVAE on its private data
// once — the paper's partitioning is static, so the CVAE is trained on first
// participation and its decoder parameters are cached (footnote 5).
//
// Malicious behaviour (TM-4..TM-6):
//  - model attacks transform the uploaded ψ after local training;
//  - the label-flip data attack permanently flips the local labels at
//    corruption time, poisoning both classifier and CVAE training.

#include <cstdint>
#include <memory>
#include <optional>

#include "attacks/attack.hpp"
#include "data/dataset.hpp"
#include "defenses/aggregation.hpp"
#include "models/classifier.hpp"
#include "models/cvae.hpp"

namespace fedguard::fl {

struct ClientConfig {
  std::size_t local_epochs = 5;        // paper: 5
  std::size_t batch_size = 32;
  float learning_rate = 0.05f;
  float momentum = 0.9f;
  /// FedProx proximal coefficient mu; 0 = plain FedAvg local objective.
  float proximal_mu = 0.0f;
  std::size_t cvae_epochs = 30;        // paper: 30
  std::size_t cvae_batch_size = 64;
  float cvae_learning_rate = 1e-3f;
  bool train_cvae = true;              // disabled when the strategy never uses decoders
  /// 0 = train the CVAE once (paper footnote 5, static partitions). k > 0 =
  /// retrain every k participations — the paper's "dynamic datasets" future
  /// work (§VI-C), for clients whose local data changes over time.
  std::size_t cvae_retrain_interval = 0;
};

class Client {
 public:
  /// Copies the samples indexed by `indices` out of `source` into the
  /// client's private local dataset.
  Client(int id, const data::Dataset& source, std::span<const std::size_t> indices,
         ClientConfig config, models::ClassifierArch arch, models::ImageGeometry geometry,
         models::CvaeSpec cvae_spec, std::uint64_t seed);

  /// Corrupt this client with a model-poisoning attack. `attack` must outlive
  /// the client.
  void corrupt_with_model_attack(const attacks::ModelAttack* attack);
  /// Corrupt this client with the label-flipping data attack (applies the
  /// flips to the local dataset immediately).
  void corrupt_with_label_flip(const std::vector<std::pair<int, int>>& pairs);

  /// Replace the client's local dataset (streaming / dynamic-data setting,
  /// paper §VI-C). If this client was corrupted with label flipping, the
  /// flips are re-applied to the new data. The cached CVAE decoder is kept
  /// until the retrain interval (if any) elapses, mirroring a device that
  /// refreshes its generative model lazily.
  void refresh_data(const data::Dataset& source, std::span<const std::size_t> indices);

  /// Execute one federated round: local classifier training from the given
  /// global parameters, CVAE training on first call (if enabled), and attack
  /// application. Thread-safe with respect to OTHER clients (no shared
  /// mutable state).
  [[nodiscard]] defenses::ClientUpdate run_round(std::span<const float> global_parameters,
                                                 std::size_t round);

  /// Zero-copy form: the trained ψ is written directly into `row.psi` (which
  /// must span the global parameter dimension), θ into `row.theta` when it
  /// fits, and the metadata into `row.meta`. Identical rng draws and training
  /// trajectory to run_round — the two forms are bit-for-bit interchangeable.
  void run_round_into(std::span<const float> global_parameters, std::size_t round,
                      defenses::UpdateRow row);

  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] bool malicious() const noexcept {
    return model_attack_ != nullptr || label_flipped_;
  }
  [[nodiscard]] std::size_t num_samples() const noexcept { return local_data_.size(); }
  [[nodiscard]] const data::Dataset& local_data() const noexcept { return local_data_; }
  [[nodiscard]] bool cvae_trained() const noexcept { return !cached_theta_.empty(); }

 private:
  void ensure_cvae_trained();

  int id_;
  ClientConfig config_;
  models::ClassifierArch arch_;
  models::ImageGeometry geometry_;
  models::CvaeSpec cvae_spec_;
  std::uint64_t seed_;
  data::Dataset local_data_;
  std::vector<float> cached_theta_;
  const attacks::ModelAttack* model_attack_ = nullptr;
  bool label_flipped_ = false;
  std::vector<std::pair<int, int>> flip_pairs_;
  std::size_t participations_ = 0;
  std::size_t participations_at_last_cvae_ = 0;
  util::Rng rng_;
};

}  // namespace fedguard::fl
