#include "fl/client.hpp"

#include <numeric>

#include "attacks/label_flip.hpp"
#include "data/dataloader.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace fedguard::fl {

Client::Client(int id, const data::Dataset& source, std::span<const std::size_t> indices,
               ClientConfig config, models::ClassifierArch arch,
               models::ImageGeometry geometry, models::CvaeSpec cvae_spec,
               std::uint64_t seed)
    : id_{id},
      config_{config},
      arch_{arch},
      geometry_{geometry},
      cvae_spec_{cvae_spec},
      seed_{seed},
      local_data_{source.subset(indices)},
      rng_{seed} {}

void Client::corrupt_with_model_attack(const attacks::ModelAttack* attack) {
  model_attack_ = attack;
}

void Client::corrupt_with_label_flip(const std::vector<std::pair<int, int>>& pairs) {
  label_flipped_ = true;
  flip_pairs_ = pairs;
  const std::size_t changed = attacks::apply_label_flip(local_data_, pairs);
  util::log_debug("client %d: label flip corrupted %zu samples", id_, changed);
}

void Client::refresh_data(const data::Dataset& source,
                          std::span<const std::size_t> indices) {
  local_data_ = source.subset(indices);
  if (label_flipped_) attacks::apply_label_flip(local_data_, flip_pairs_);
}

void Client::ensure_cvae_trained() {
  if (!config_.train_cvae) return;
  const bool stale =
      config_.cvae_retrain_interval > 0 &&
      participations_ - participations_at_last_cvae_ >= config_.cvae_retrain_interval;
  if (!cached_theta_.empty() && !stale) return;
  FEDGUARD_TRACE_SPAN("client.cvae", "cvae_train:" + std::to_string(id_));
  // Static partitions: the CVAE is trained exactly once (paper footnote 5);
  // with a retrain interval it follows the local data stream (§VI-C).
  // Note a label-flipped client trains its CVAE on the flipped labels, so its
  // decoder is poisoned too (paper §VI-B).
  models::Cvae cvae{cvae_spec_, seed_ ^ 0xc7aeULL ^ participations_};
  std::vector<std::size_t> all(local_data_.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const tensor::Tensor flat_images = local_data_.gather_flat(all);
  cvae.train(flat_images, local_data_.labels(), config_.cvae_epochs,
             config_.cvae_batch_size, config_.cvae_learning_rate);
  cached_theta_ = cvae.decoder().parameters_flat();
  participations_at_last_cvae_ = participations_;
}

void Client::run_round_into(std::span<const float> global_parameters, std::size_t round,
                            defenses::UpdateRow row) {
  ensure_cvae_trained();
  ++participations_;

  // Fresh model + fresh local optimizer state each round (standard FL).
  models::Classifier classifier{arch_, geometry_, seed_ ^ (round + 1)};
  classifier.load_parameters_flat(global_parameters);

  std::vector<std::size_t> all(local_data_.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  data::DataLoader loader{local_data_, all, config_.batch_size, rng_()};
  {
    FEDGUARD_TRACE_SPAN("client.train", "train:" + std::to_string(id_));
    for (std::size_t epoch = 0; epoch < config_.local_epochs; ++epoch) {
      loader.start_epoch();
      data::Dataset::Batch batch;
      while (loader.next(batch)) {
        classifier.train_batch(batch.images, batch.labels, config_.learning_rate,
                               config_.momentum, config_.proximal_mu, global_parameters);
      }
    }
  }

  classifier.copy_parameters_to(row.psi);
  row.meta->client_id = id_;
  row.meta->num_samples = local_data_.size();
  row.meta->truly_malicious = malicious();
  // theta_count always records the cached decoder's true length; the copy
  // happens only when the arena row has capacity for it, so a dimension
  // mismatch surfaces as metadata for the strategy to reject, never as an
  // out-of-bounds write.
  row.meta->theta_count = cached_theta_.size();
  if (cached_theta_.size() <= row.theta.size()) {
    std::copy(cached_theta_.begin(), cached_theta_.end(), row.theta.begin());
  }

  if (model_attack_ != nullptr) {
    model_attack_->apply(row.psi, global_parameters, round);
  }
}

defenses::ClientUpdate Client::run_round(std::span<const float> global_parameters,
                                         std::size_t round) {
  // Compat wrapper over the zero-copy path (remote clients and tests); the
  // CVAE must be trained first so the theta buffer can be sized.
  ensure_cvae_trained();

  defenses::ClientUpdate update;
  update.psi.resize(global_parameters.size());
  update.theta.resize(cached_theta_.size());
  defenses::UpdateMeta meta;
  run_round_into(global_parameters, round,
                 defenses::UpdateRow{update.psi, update.theta, &meta});
  update.client_id = meta.client_id;
  update.num_samples = meta.num_samples;
  update.truly_malicious = meta.truly_malicious;
  return update;
}

}  // namespace fedguard::fl
