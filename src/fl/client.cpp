#include "fl/client.hpp"

#include <numeric>

#include "attacks/label_flip.hpp"
#include "data/dataloader.hpp"
#include "util/logging.hpp"

namespace fedguard::fl {

Client::Client(int id, const data::Dataset& source, std::span<const std::size_t> indices,
               ClientConfig config, models::ClassifierArch arch,
               models::ImageGeometry geometry, models::CvaeSpec cvae_spec,
               std::uint64_t seed)
    : id_{id},
      config_{config},
      arch_{arch},
      geometry_{geometry},
      cvae_spec_{cvae_spec},
      seed_{seed},
      local_data_{source.subset(indices)},
      rng_{seed} {}

void Client::corrupt_with_model_attack(const attacks::ModelAttack* attack) {
  model_attack_ = attack;
}

void Client::corrupt_with_label_flip(const std::vector<std::pair<int, int>>& pairs) {
  label_flipped_ = true;
  flip_pairs_ = pairs;
  const std::size_t changed = attacks::apply_label_flip(local_data_, pairs);
  util::log_debug("client %d: label flip corrupted %zu samples", id_, changed);
}

void Client::refresh_data(const data::Dataset& source,
                          std::span<const std::size_t> indices) {
  local_data_ = source.subset(indices);
  if (label_flipped_) attacks::apply_label_flip(local_data_, flip_pairs_);
}

void Client::ensure_cvae_trained() {
  if (!config_.train_cvae) return;
  const bool stale =
      config_.cvae_retrain_interval > 0 &&
      participations_ - participations_at_last_cvae_ >= config_.cvae_retrain_interval;
  if (!cached_theta_.empty() && !stale) return;
  // Static partitions: the CVAE is trained exactly once (paper footnote 5);
  // with a retrain interval it follows the local data stream (§VI-C).
  // Note a label-flipped client trains its CVAE on the flipped labels, so its
  // decoder is poisoned too (paper §VI-B).
  models::Cvae cvae{cvae_spec_, seed_ ^ 0xc7aeULL ^ participations_};
  std::vector<std::size_t> all(local_data_.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  const tensor::Tensor flat_images = local_data_.gather_flat(all);
  cvae.train(flat_images, local_data_.labels(), config_.cvae_epochs,
             config_.cvae_batch_size, config_.cvae_learning_rate);
  cached_theta_ = cvae.decoder().parameters_flat();
  participations_at_last_cvae_ = participations_;
}

defenses::ClientUpdate Client::run_round(std::span<const float> global_parameters,
                                         std::size_t round) {
  ensure_cvae_trained();
  ++participations_;

  // Fresh model + fresh local optimizer state each round (standard FL).
  models::Classifier classifier{arch_, geometry_, seed_ ^ (round + 1)};
  classifier.load_parameters_flat(global_parameters);

  std::vector<std::size_t> all(local_data_.size());
  std::iota(all.begin(), all.end(), std::size_t{0});
  data::DataLoader loader{local_data_, all, config_.batch_size, rng_()};
  for (std::size_t epoch = 0; epoch < config_.local_epochs; ++epoch) {
    loader.start_epoch();
    data::Dataset::Batch batch;
    while (loader.next(batch)) {
      classifier.train_batch(batch.images, batch.labels, config_.learning_rate,
                             config_.momentum, config_.proximal_mu, global_parameters);
    }
  }

  defenses::ClientUpdate update;
  update.client_id = id_;
  update.psi = classifier.parameters_flat();
  update.theta = cached_theta_;
  update.num_samples = local_data_.size();
  update.truly_malicious = malicious();

  if (model_attack_ != nullptr) {
    model_attack_->apply(update.psi, global_parameters, round);
  }
  return update;
}

}  // namespace fedguard::fl
