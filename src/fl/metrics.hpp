#pragma once
// Per-round records and run-level history for the experiment harness.
// Fig. 4/5 plot the accuracy series; Table IV summarizes the trailing window;
// Table V aggregates the traffic and timing columns.

#include <string>
#include <vector>

#include "util/stats.hpp"

namespace fedguard::fl {

struct RoundRecord {
  std::size_t round = 0;
  double test_accuracy = 0.0;
  /// Per-class recall on the test set; empty unless
  /// ServerConfig::track_per_class_accuracy is set (targeted-attack analysis).
  std::vector<double> per_class_accuracy;
  double round_seconds = 0.0;          // wall-clock including aggregation
  std::size_t server_upload_bytes = 0;    // server -> clients (ψ0 broadcast)
  std::size_t server_download_bytes = 0;  // clients -> server (ψ, and θ for FedGuard)
  std::size_t sampled_clients = 0;
  std::size_t sampled_malicious = 0;
  std::size_t stragglers = 0;  // sampled clients that failed to respond
  // Remote-path fault accounting (net::RemoteServer): how each sampled
  // client that failed to contribute this round actually failed.
  std::size_t dropouts = 0;        // connection died (EOF/reset/send failure)
  std::size_t timeouts = 0;        // round deadline expired with no reply
  std::size_t corrupt_frames = 0;  // CRC mismatch / truncated / malformed frame
  std::size_t ejected_clients = 0; // ejected this round (K consecutive failures)
  std::size_t rejected_clients = 0;
  std::size_t rejected_malicious = 0;  // true positives of the defense
  std::size_t rejected_benign = 0;     // false positives of the defense
};

struct RunHistory {
  std::string strategy;
  std::string attack;
  double malicious_fraction = 0.0;
  std::vector<RoundRecord> rounds;

  [[nodiscard]] std::vector<double> accuracy_series() const;
  /// Mean/stddev of test accuracy over the trailing `window` rounds
  /// (Table IV uses the last 40 of 50 rounds).
  [[nodiscard]] util::TrailingStats trailing_accuracy(std::size_t window) const;
  [[nodiscard]] double mean_round_seconds() const;
  /// Median round time: steady-state cost, robust to the first rounds where
  /// FedGuard clients pay their one-time CVAE training.
  [[nodiscard]] double median_round_seconds() const;
  [[nodiscard]] double mean_upload_bytes() const;
  [[nodiscard]] double mean_download_bytes() const;
  /// Defense detection rates over the whole run (malicious rejected /
  /// malicious sampled, benign rejected / benign sampled).
  [[nodiscard]] double true_positive_rate() const;
  [[nodiscard]] double false_positive_rate() const;
  /// Trailing-window mean recall of one class (requires per-class tracking);
  /// returns 0 when no per-class data was recorded.
  [[nodiscard]] double trailing_class_accuracy(std::size_t class_id,
                                               std::size_t window) const;
  /// Run totals of the remote-path fault counters (zero for in-process runs).
  [[nodiscard]] std::size_t total_dropouts() const;
  [[nodiscard]] std::size_t total_timeouts() const;
  [[nodiscard]] std::size_t total_corrupt_frames() const;
  [[nodiscard]] std::size_t total_ejected() const;

  /// Dump one row per round to CSV.
  void write_csv(const std::string& path) const;
};

}  // namespace fedguard::fl
