#include "fl/metrics.hpp"

#include "util/csv.hpp"

namespace fedguard::fl {

std::vector<double> RunHistory::accuracy_series() const {
  std::vector<double> series;
  series.reserve(rounds.size());
  for (const auto& record : rounds) series.push_back(record.test_accuracy);
  return series;
}

util::TrailingStats RunHistory::trailing_accuracy(std::size_t window) const {
  const std::vector<double> series = accuracy_series();
  return util::trailing_stats(series, window);
}

double RunHistory::mean_round_seconds() const {
  if (rounds.empty()) return 0.0;
  double total = 0.0;
  for (const auto& record : rounds) total += record.round_seconds;
  return total / static_cast<double>(rounds.size());
}

double RunHistory::median_round_seconds() const {
  std::vector<double> seconds;
  seconds.reserve(rounds.size());
  for (const auto& record : rounds) seconds.push_back(record.round_seconds);
  return util::median(std::span<const double>{seconds});
}

double RunHistory::mean_upload_bytes() const {
  if (rounds.empty()) return 0.0;
  double total = 0.0;
  for (const auto& record : rounds) total += static_cast<double>(record.server_upload_bytes);
  return total / static_cast<double>(rounds.size());
}

double RunHistory::mean_download_bytes() const {
  if (rounds.empty()) return 0.0;
  double total = 0.0;
  for (const auto& record : rounds) total += static_cast<double>(record.server_download_bytes);
  return total / static_cast<double>(rounds.size());
}

double RunHistory::true_positive_rate() const {
  std::size_t malicious = 0, rejected = 0;
  for (const auto& record : rounds) {
    malicious += record.sampled_malicious;
    rejected += record.rejected_malicious;
  }
  return malicious == 0 ? 0.0
                        : static_cast<double>(rejected) / static_cast<double>(malicious);
}

double RunHistory::false_positive_rate() const {
  std::size_t benign = 0, rejected = 0;
  for (const auto& record : rounds) {
    benign += record.sampled_clients - record.sampled_malicious;
    rejected += record.rejected_benign;
  }
  return benign == 0 ? 0.0 : static_cast<double>(rejected) / static_cast<double>(benign);
}

double RunHistory::trailing_class_accuracy(std::size_t class_id,
                                           std::size_t window) const {
  std::vector<double> series;
  for (const auto& record : rounds) {
    if (class_id < record.per_class_accuracy.size()) {
      series.push_back(record.per_class_accuracy[class_id]);
    }
  }
  if (series.empty()) return 0.0;
  return util::trailing_stats(series, window).mean;
}

std::size_t RunHistory::total_dropouts() const {
  std::size_t total = 0;
  for (const auto& record : rounds) total += record.dropouts;
  return total;
}

std::size_t RunHistory::total_timeouts() const {
  std::size_t total = 0;
  for (const auto& record : rounds) total += record.timeouts;
  return total;
}

std::size_t RunHistory::total_corrupt_frames() const {
  std::size_t total = 0;
  for (const auto& record : rounds) total += record.corrupt_frames;
  return total;
}

std::size_t RunHistory::total_ejected() const {
  std::size_t total = 0;
  for (const auto& record : rounds) total += record.ejected_clients;
  return total;
}

void RunHistory::write_csv(const std::string& path) const {
  util::CsvWriter csv{path,
                      {"round", "strategy", "attack", "malicious_fraction", "test_accuracy",
                       "round_seconds", "upload_bytes", "download_bytes", "sampled",
                       "sampled_malicious", "stragglers", "dropouts", "timeouts",
                       "corrupt_frames", "ejected", "rejected", "rejected_malicious",
                       "rejected_benign"}};
  for (const auto& r : rounds) {
    csv.write_row({util::CsvWriter::cell(r.round), strategy, attack,
                   util::CsvWriter::cell(malicious_fraction),
                   util::CsvWriter::cell(r.test_accuracy),
                   util::CsvWriter::cell(r.round_seconds),
                   util::CsvWriter::cell(r.server_upload_bytes),
                   util::CsvWriter::cell(r.server_download_bytes),
                   util::CsvWriter::cell(r.sampled_clients),
                   util::CsvWriter::cell(r.sampled_malicious),
                   util::CsvWriter::cell(r.stragglers),
                   util::CsvWriter::cell(r.dropouts),
                   util::CsvWriter::cell(r.timeouts),
                   util::CsvWriter::cell(r.corrupt_frames),
                   util::CsvWriter::cell(r.ejected_clients),
                   util::CsvWriter::cell(r.rejected_clients),
                   util::CsvWriter::cell(r.rejected_malicious),
                   util::CsvWriter::cell(r.rejected_benign)});
  }
}

}  // namespace fedguard::fl
