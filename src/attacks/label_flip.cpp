#include "attacks/label_flip.hpp"

namespace fedguard::attacks {

std::vector<std::pair<int, int>> default_flip_pairs() { return {{5, 7}, {4, 2}}; }

std::size_t apply_label_flip(data::Dataset& dataset,
                             const std::vector<std::pair<int, int>>& pairs) {
  std::size_t changed = 0;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const int label = dataset.label(i);
    for (const auto& [a, b] : pairs) {
      if (label == a) {
        dataset.set_label(i, b);
        ++changed;
        break;
      }
      if (label == b) {
        dataset.set_label(i, a);
        ++changed;
        break;
      }
    }
  }
  return changed;
}

}  // namespace fedguard::attacks
