#include "attacks/covert.hpp"

#include <cassert>
#include <cmath>

namespace fedguard::attacks {

namespace {

double delta_norm(std::span<const float> update, std::span<const float> global) {
  double sum = 0.0;
  for (std::size_t i = 0; i < update.size(); ++i) {
    const double d = static_cast<double>(update[i]) - static_cast<double>(global[i]);
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace

void CovertPoisonAttack::apply(std::span<float> update, std::span<const float> global,
                               std::size_t /*round*/) const {
  assert(update.size() == global.size());
  // Reverse the honest descent direction, scaled to stealth × its own norm:
  // ||ψ' - ψ0|| = stealth * ||ψ - ψ0||, so a norm gate tuned on benign
  // uploads cannot separate the poisoned one.
  for (std::size_t i = 0; i < update.size(); ++i) {
    update[i] = global[i] - stealth_ * (update[i] - global[i]);
  }
}

void KrumEvadeAttack::apply(std::span<float> update, std::span<const float> global,
                            std::size_t round) const {
  assert(update.size() == global.size());
  const double scale = epsilon_ * delta_norm(update, global);
  // Same (collusion_seed, round) -> identical direction u across colluders;
  // they differ only by their honest-delta norms along this one line, so the
  // colluding cluster's diameter is ε·|Δnorm| — far below the benign SGD
  // spread that Krum's nearest-neighbour sums are calibrated to.
  util::Rng rng{collusion_seed_ ^ (0xbf58476d1ce4e5b9ULL * (round + 1))};
  double direction_norm_sq = 0.0;
  std::vector<float> direction(update.size());
  for (auto& v : direction) {
    v = static_cast<float>(rng.normal(0.0, 1.0));
    direction_norm_sq += static_cast<double>(v) * static_cast<double>(v);
  }
  const double direction_norm = std::sqrt(direction_norm_sq);
  const double step = direction_norm > 0.0 ? scale / direction_norm : 0.0;
  for (std::size_t i = 0; i < update.size(); ++i) {
    update[i] = global[i] + static_cast<float>(step * static_cast<double>(direction[i]));
  }
}

}  // namespace fedguard::attacks
