#pragma once
// Adaptive / covert model-poisoning attacks (the adversary knows which
// defense family is deployed and shapes its upload to slip past it).
//
//  - CovertPoisonAttack: norm-constrained covert model poisoning (Wei et al.
//    2021, arXiv 2101.11799). The attacker ascends its own loss (negated
//    honest delta) but projects the poisoned delta onto a ball of
//    stealth * ||honest delta||, so magnitude-based defenses (norm
//    thresholding, and the outlier side of trimmed statistics) see an
//    inlier-sized update while the direction is maximally harmful.
//  - KrumEvadeAttack: adaptive collusion against nearest-neighbour selectors
//    (Fang et al. 2020 style). All colluders submit near-identical points a
//    small shared offset away from the broadcast ψ0; the colluding cluster is
//    tighter than the benign SGD spread, so Krum-family scores (sum of
//    distances to nearest neighbours) crown a colluder and the global model
//    stops learning.
//
// Both are registered AttackType values and appear on the scenario sweep
// roster (src/scenario/matrix.cpp), giving the leaderboard its adaptive-
// adversary columns.

#include "attacks/attack.hpp"

namespace fedguard::attacks {

/// ψ = ψ0 - stealth * (ψ - ψ0): gradient ascent disguised inside the benign
/// norm envelope. stealth in (0, 1] bounds ||ψ' - ψ0|| to stealth times the
/// honest delta norm; 1 preserves it exactly (the strongest covert setting
/// that still defeats norm thresholding).
class CovertPoisonAttack final : public ModelAttack {
 public:
  explicit CovertPoisonAttack(float stealth = 1.0f) : stealth_{stealth} {}
  void apply(std::span<float> update, std::span<const float> global,
             std::size_t round) const override;
  [[nodiscard]] std::string name() const override { return "covert"; }

 private:
  float stealth_;
};

/// ψ = ψ0 + ε * ||ψ - ψ0|| * u, with u a shared unit direction per round
/// (derived from the collusion seed, TM-5). Colluders differ only by their
/// honest-delta norms along one line, so their pairwise distances are orders
/// of magnitude below the benign spread.
class KrumEvadeAttack final : public ModelAttack {
 public:
  KrumEvadeAttack(double epsilon, std::uint64_t collusion_seed)
      : epsilon_{epsilon}, collusion_seed_{collusion_seed} {}
  void apply(std::span<float> update, std::span<const float> global,
             std::size_t round) const override;
  [[nodiscard]] std::string name() const override { return "krum_evade"; }

 private:
  double epsilon_;
  std::uint64_t collusion_seed_;
};

}  // namespace fedguard::attacks
