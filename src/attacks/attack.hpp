#pragma once
// Poisoning attacks (Section IV-B of the paper).
//
// Model poisoning attacks transform the flat local parameter vector ψ after
// local training and before upload:
//   - SameValueAttack:    ψ = c * 1          (c = 1 in the paper)
//   - SignFlipAttack:     ψ = -ψ
//   - AdditiveNoiseAttack ψ = ψ + ε, with all colluding clients agreeing on
//                         the SAME Gaussian ε per round (shared seed).
// The label-flipping data poisoning attack lives in label_flip.hpp as it
// operates on the client's training data instead.

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace fedguard::attacks {

/// Attack kinds evaluated in the paper (SameValue, SignFlip, AdditiveNoise,
/// LabelFlip), None for the clean baseline, plus two extensions from the
/// wider poisoning literature:
///  - Scaling: model replacement (Bagdasaryan et al.) — the attacker submits
///    ψ0 + λ(ψ_mal − ψ0), boosting its malicious direction to survive
///    averaging; defeats plain FedAvg, caught by norm bounding.
///  - RandomUpdate: submit weights drawn from N(0, σ) — an unsophisticated
///    untargeted attack.
///  - Covert / KrumEvade: adaptive attacks shaped to evade a known defense
///    family (norm bounding / nearest-neighbour selection); see covert.hpp.
enum class AttackType {
  None,
  SameValue,
  SignFlip,
  AdditiveNoise,
  LabelFlip,
  Scaling,
  RandomUpdate,
  Covert,
  KrumEvade,
};

/// Every AttackType, for exhaustive iteration (parse round-trip tests, the
/// scenario sweep roster). Extend in lockstep with the enum.
inline constexpr std::array<AttackType, 9> kAllAttackTypes{
    AttackType::None,          AttackType::SameValue, AttackType::SignFlip,
    AttackType::AdditiveNoise, AttackType::LabelFlip, AttackType::Scaling,
    AttackType::RandomUpdate,  AttackType::Covert,    AttackType::KrumEvade,
};

[[nodiscard]] const char* to_string(AttackType type) noexcept;
/// Parse the names produced by to_string ("none", "same_value", ...); throws
/// std::invalid_argument enumerating every valid name on unknown input.
[[nodiscard]] AttackType attack_type_from_string(const std::string& text);
/// True for attacks applied to the uploaded parameter vector.
[[nodiscard]] bool is_model_attack(AttackType type) noexcept;

/// Transformation of an uploaded parameter vector. `round` lets colluding
/// attackers coordinate (identical noise per round); `global` is the round's
/// broadcast ψ0, which model-replacement attacks scale against (TM-2: the
/// federated model is visible to all parties).
class ModelAttack {
 public:
  virtual ~ModelAttack() = default;
  virtual void apply(std::span<float> update, std::span<const float> global,
                     std::size_t round) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// ψ = c * 1 (Li et al., RSA).
class SameValueAttack final : public ModelAttack {
 public:
  explicit SameValueAttack(float constant = 1.0f) : constant_{constant} {}
  void apply(std::span<float> update, std::span<const float> global,
             std::size_t round) const override;
  [[nodiscard]] std::string name() const override { return "same_value"; }

 private:
  float constant_;
};

/// ψ = -ψ. Magnitudes are preserved, defeating norm-threshold defenses.
class SignFlipAttack final : public ModelAttack {
 public:
  void apply(std::span<float> update, std::span<const float> global,
             std::size_t round) const override;
  [[nodiscard]] std::string name() const override { return "sign_flip"; }
};

/// ψ = ψ + ε with ε ~ N(0, stddev). All clients constructed with the same
/// collusion_seed produce the identical ε in the same round (TM-5).
class AdditiveNoiseAttack final : public ModelAttack {
 public:
  AdditiveNoiseAttack(double stddev, std::uint64_t collusion_seed)
      : stddev_{stddev}, collusion_seed_{collusion_seed} {}
  void apply(std::span<float> update, std::span<const float> global,
             std::size_t round) const override;
  [[nodiscard]] std::string name() const override { return "additive_noise"; }

 private:
  double stddev_;
  std::uint64_t collusion_seed_;
};

/// Model replacement: ψ = ψ0 + λ(ψ − ψ0). With λ ≈ m the attacker's delta
/// survives FedAvg intact (Bagdasaryan et al. 2020).
class ScalingAttack final : public ModelAttack {
 public:
  explicit ScalingAttack(float boost_factor) : boost_{boost_factor} {}
  void apply(std::span<float> update, std::span<const float> global,
             std::size_t round) const override;
  [[nodiscard]] std::string name() const override { return "scaling"; }

 private:
  float boost_;
};

/// ψ ~ N(0, stddev) elementwise, independent per client and round.
class RandomUpdateAttack final : public ModelAttack {
 public:
  RandomUpdateAttack(double stddev, std::uint64_t seed) : stddev_{stddev}, seed_{seed} {}
  void apply(std::span<float> update, std::span<const float> global,
             std::size_t round) const override;
  [[nodiscard]] std::string name() const override { return "random_update"; }

 private:
  double stddev_;
  std::uint64_t seed_;
};

/// Knobs consumed by make_model_attack (each attack reads the ones it needs).
struct ModelAttackOptions {
  float same_value_constant = 1.0f;  // paper: c = 1
  double noise_stddev = 1.0;         // additive noise / random update σ
  float scaling_boost = 10.0f;       // λ for the scaling attack
  float covert_stealth = 1.0f;       // covert norm budget (× honest delta)
  double krum_evade_epsilon = 0.05;  // colluding-cluster offset (× honest delta)
  std::uint64_t collusion_seed = 42;
};

/// Build the ModelAttack instance for a model-attack type; returns nullptr
/// for None / data attacks.
[[nodiscard]] std::unique_ptr<ModelAttack> make_model_attack(AttackType type,
                                                             const ModelAttackOptions& options);

/// Deterministically choose which clients are malicious: a uniform subset of
/// floor(fraction * num_clients) client ids.
[[nodiscard]] std::vector<bool> make_malicious_mask(std::size_t num_clients, double fraction,
                                                    std::uint64_t seed);

}  // namespace fedguard::attacks
