#pragma once
// Label-flipping data poisoning attack (Fang et al.). Malicious clients swap
// the labels of selected class pairs in their local training data before
// training both their classifier and (importantly, per §VI-B of the paper)
// their CVAE — so a label-flipping client also ships a poisoned decoder.
//
// The paper flips digits 5 <-> 7 and 4 <-> 2.

#include <utility>
#include <vector>

#include "data/dataset.hpp"

namespace fedguard::attacks {

/// Default flip pairs used in the paper's experiments.
[[nodiscard]] std::vector<std::pair<int, int>> default_flip_pairs();

/// Swap labels of each pair (both directions: a->b and b->a) in-place.
/// Returns the number of labels changed.
std::size_t apply_label_flip(data::Dataset& dataset,
                             const std::vector<std::pair<int, int>>& pairs);

}  // namespace fedguard::attacks
