#include "attacks/attack.hpp"
#include <cassert>

#include <algorithm>
#include <stdexcept>

#include "attacks/covert.hpp"

namespace fedguard::attacks {

const char* to_string(AttackType type) noexcept {
  switch (type) {
    case AttackType::None: return "none";
    case AttackType::SameValue: return "same_value";
    case AttackType::SignFlip: return "sign_flip";
    case AttackType::AdditiveNoise: return "additive_noise";
    case AttackType::LabelFlip: return "label_flip";
    case AttackType::Scaling: return "scaling";
    case AttackType::RandomUpdate: return "random_update";
    case AttackType::Covert: return "covert";
    case AttackType::KrumEvade: return "krum_evade";
  }
  return "unknown";
}

AttackType attack_type_from_string(const std::string& text) {
  for (const AttackType type : kAllAttackTypes) {
    if (text == to_string(type)) return type;
  }
  std::string message = "unknown attack type: '" + text + "' (valid:";
  for (const AttackType type : kAllAttackTypes) {
    message += ' ';
    message += to_string(type);
  }
  message += ')';
  throw std::invalid_argument{message};
}

bool is_model_attack(AttackType type) noexcept {
  return type == AttackType::SameValue || type == AttackType::SignFlip ||
         type == AttackType::AdditiveNoise || type == AttackType::Scaling ||
         type == AttackType::RandomUpdate || type == AttackType::Covert ||
         type == AttackType::KrumEvade;
}

void SameValueAttack::apply(std::span<float> update, std::span<const float> /*global*/,
                            std::size_t /*round*/) const {
  std::fill(update.begin(), update.end(), constant_);
}

void SignFlipAttack::apply(std::span<float> update, std::span<const float> /*global*/,
                           std::size_t /*round*/) const {
  for (auto& v : update) v = -v;
}

void AdditiveNoiseAttack::apply(std::span<float> update, std::span<const float> /*global*/,
                                std::size_t round) const {
  // Same (collusion_seed, round) -> identical noise stream: colluding clients
  // submit identically perturbed updates.
  util::Rng rng{collusion_seed_ ^ (0x9e3779b97f4a7c15ULL * (round + 1))};
  for (auto& v : update) v += static_cast<float>(rng.normal(0.0, stddev_));
}

void ScalingAttack::apply(std::span<float> update, std::span<const float> global,
                          std::size_t /*round*/) const {
  assert(update.size() == global.size());
  for (std::size_t i = 0; i < update.size(); ++i) {
    update[i] = global[i] + boost_ * (update[i] - global[i]);
  }
}

void RandomUpdateAttack::apply(std::span<float> update, std::span<const float> /*global*/,
                               std::size_t round) const {
  // Independent per round; not coordinated (unlike additive noise).
  util::Rng rng{seed_ ^ (0xd1b54a32d192ed03ULL * (round + 1))};
  for (auto& v : update) v = static_cast<float>(rng.normal(0.0, stddev_));
}

std::unique_ptr<ModelAttack> make_model_attack(AttackType type,
                                               const ModelAttackOptions& options) {
  switch (type) {
    case AttackType::SameValue:
      return std::make_unique<SameValueAttack>(options.same_value_constant);
    case AttackType::SignFlip:
      return std::make_unique<SignFlipAttack>();
    case AttackType::AdditiveNoise:
      return std::make_unique<AdditiveNoiseAttack>(options.noise_stddev,
                                                   options.collusion_seed);
    case AttackType::Scaling:
      return std::make_unique<ScalingAttack>(options.scaling_boost);
    case AttackType::RandomUpdate:
      return std::make_unique<RandomUpdateAttack>(options.noise_stddev,
                                                  options.collusion_seed);
    case AttackType::Covert:
      return std::make_unique<CovertPoisonAttack>(options.covert_stealth);
    case AttackType::KrumEvade:
      return std::make_unique<KrumEvadeAttack>(options.krum_evade_epsilon,
                                               options.collusion_seed);
    default:
      return nullptr;
  }
}

std::vector<bool> make_malicious_mask(std::size_t num_clients, double fraction,
                                      std::uint64_t seed) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument{"make_malicious_mask: fraction must be in [0, 1]"};
  }
  const auto malicious_count =
      static_cast<std::size_t>(fraction * static_cast<double>(num_clients));
  util::Rng rng{seed};
  std::vector<bool> mask(num_clients, false);
  for (const std::size_t id : rng.sample_without_replacement(num_clients, malicious_count)) {
    mask[id] = true;
  }
  return mask;
}

}  // namespace fedguard::attacks
