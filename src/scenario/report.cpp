#include "scenario/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>

namespace fedguard::scenario {

namespace {

/// Fixed-precision float formatting — locale-independent and identical across
/// runs, which std::ostream << double is not guaranteed to be.
std::string fmt(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  return buffer;
}

void append_cell(std::string& out, const CellResult& cell) {
  out += "    {\"cell\": \"" + cell.cell_id + "\",";
  out += " \"attack\": \"" + cell.attack + "\",";
  out += " \"malicious_pct\": " + std::to_string(cell.malicious_pct) + ",";
  out += " \"defense\": \"" + cell.defense + "\",";
  out += " \"regime\": \"" + cell.regime + "\",";
  out += " \"shards\": " + std::to_string(cell.shards) + ",";
  out += " \"seed\": " + std::to_string(cell.seed) + ",";
  out += " \"rounds\": " + std::to_string(cell.rounds) + ",\n";
  out += "     \"final_accuracy\": " + fmt(cell.final_accuracy) + ",";
  out += " \"baseline_accuracy\": " + fmt(cell.baseline_accuracy) + ",";
  out += " \"attack_success\": " + fmt(cell.attack_success) + ",\n";
  out += "     \"sampled_malicious\": " + std::to_string(cell.sampled_malicious) + ",";
  out += " \"rejected_malicious\": " + std::to_string(cell.rejected_malicious) + ",";
  out += " \"rejected_benign\": " + std::to_string(cell.rejected_benign) + ",";
  out += " \"ejection_precision\": " + fmt(cell.ejection_precision) + ",";
  out += " \"ejection_recall\": " + fmt(cell.ejection_recall) + "}";
}

}  // namespace

std::string to_json(const Leaderboard& board) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"fedguard-robustness-v1\",\n";
  out += "  \"matrix\": \"" + board.matrix_name + "\",\n";
  out += "  \"seed\": " + std::to_string(board.seed) + ",\n";
  out += "  \"rounds\": " + std::to_string(board.rounds) + ",\n";
  out += "  \"cells\": [\n";
  for (std::size_t i = 0; i < board.cells.size(); ++i) {
    append_cell(out, board.cells[i]);
    out += i + 1 < board.cells.size() ? ",\n" : "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

void write_json(const Leaderboard& board, const std::string& path) {
  std::ofstream file{path, std::ios::binary | std::ios::trunc};
  if (!file) throw std::runtime_error{"scenario: cannot open " + path};
  file << to_json(board);
  if (!file) throw std::runtime_error{"scenario: write failed for " + path};
}

void print_leaderboard(std::ostream& out, const Leaderboard& board) {
  // Group by attack scenario; within each group rank defenses by accuracy.
  std::map<std::string, std::vector<const CellResult*>> groups;
  for (const CellResult& cell : board.cells) {
    std::string label =
        cell.attack + "+" + std::to_string(cell.malicious_pct) + "/" + cell.regime;
    if (cell.shards > 1) label += "/s" + std::to_string(cell.shards);
    groups[std::move(label)].push_back(&cell);
  }
  out << "robustness leaderboard (matrix=" << board.matrix_name
      << ", seed=" << board.seed << ")\n";
  for (auto& [scenario_label, cells] : groups) {
    std::sort(cells.begin(), cells.end(), [](const CellResult* a, const CellResult* b) {
      if (a->final_accuracy != b->final_accuracy) {
        return a->final_accuracy > b->final_accuracy;
      }
      return a->defense < b->defense;
    });
    out << "  " << scenario_label << "\n";
    for (const CellResult* cell : cells) {
      char line[160];
      std::snprintf(line, sizeof(line),
                    "    %-14s acc %.4f  asr %.3f  eject P %.2f R %.2f",
                    cell->defense.c_str(), cell->final_accuracy, cell->attack_success,
                    cell->ejection_precision, cell->ejection_recall);
      out << line << "\n";
    }
  }
}

}  // namespace fedguard::scenario
