#include "scenario/runner.hpp"

#include <algorithm>
#include <map>

#include "core/runner.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace fedguard::scenario {

namespace {

struct DetectionSnapshot {
  std::uint64_t sampled_malicious = 0;
  std::uint64_t rejected_malicious = 0;
  std::uint64_t rejected_benign = 0;
};

DetectionSnapshot snapshot_detection_counters() {
  auto& registry = obs::Registry::global();
  DetectionSnapshot snap;
  snap.sampled_malicious = registry.counter_value("fl_sampled_malicious_total");
  snap.rejected_malicious = registry.counter_value("fl_rejected_malicious_total");
  snap.rejected_benign = registry.counter_value("fl_rejected_benign_total");
  return snap;
}

}  // namespace

const CellResult* Leaderboard::find(const std::string& cell_id) const {
  for (const CellResult& cell : cells) {
    if (cell.cell_id == cell_id) return &cell;
  }
  return nullptr;
}

CellResult run_cell(const SweepMatrix& matrix, const Cell& cell) {
  const core::ExperimentConfig config = matrix.cell_config(cell);

  const DetectionSnapshot before = snapshot_detection_counters();
  const fl::RunHistory history = core::run_experiment(config);
  const DetectionSnapshot after = snapshot_detection_counters();

  CellResult result;
  result.cell_id = cell.id();
  result.attack = attacks::to_string(cell.attack);
  result.malicious_pct =
      static_cast<long long>(cell.malicious_fraction * 100.0 + 0.5);
  result.defense = core::to_string(cell.defense);
  result.regime = cell.regime.label();
  result.shards = cell.shards;
  result.seed = config.seed;
  result.rounds = config.rounds;

  const std::size_t window = std::max<std::size_t>(1, (config.rounds + 2) / 3);
  result.final_accuracy = history.trailing_accuracy(window).mean;

  result.sampled_malicious = after.sampled_malicious - before.sampled_malicious;
  result.rejected_malicious = after.rejected_malicious - before.rejected_malicious;
  result.rejected_benign = after.rejected_benign - before.rejected_benign;
  const std::uint64_t rejected = result.rejected_malicious + result.rejected_benign;
  result.ejection_precision =
      rejected == 0 ? 1.0
                    : static_cast<double>(result.rejected_malicious) /
                          static_cast<double>(rejected);
  result.ejection_recall =
      result.sampled_malicious == 0
          ? 1.0
          : static_cast<double>(result.rejected_malicious) /
                static_cast<double>(result.sampled_malicious);
  return result;
}

Leaderboard run_sweep(const SweepMatrix& matrix, const std::string& matrix_name) {
  Leaderboard board;
  board.matrix_name = matrix_name;
  board.seed = matrix.base.seed;
  board.rounds = matrix.base.rounds;

  const std::vector<Cell> cells = matrix.enumerate();
  // Baseline accuracy per defense × regime comes from the None cells, which
  // enumerate() guarantees are present.
  std::map<std::string, double> baselines;
  board.cells.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    CellResult result = run_cell(matrix, cell);
    util::log_info("scenario: [%zu/%zu] %s acc %.4f (TP %llu FP %llu of %llu mal)",
                   i + 1, cells.size(), result.cell_id.c_str(), result.final_accuracy,
                   static_cast<unsigned long long>(result.rejected_malicious),
                   static_cast<unsigned long long>(result.rejected_benign),
                   static_cast<unsigned long long>(result.sampled_malicious));
    if (cell.attack == attacks::AttackType::None) {
      baselines[result.defense + "/" + result.regime + "/s" +
                std::to_string(result.shards)] = result.final_accuracy;
    }
    board.cells.push_back(std::move(result));
  }

  for (CellResult& result : board.cells) {
    const auto it = baselines.find(result.defense + "/" + result.regime + "/s" +
                                   std::to_string(result.shards));
    if (it == baselines.end()) continue;
    result.baseline_accuracy = it->second;
    if (result.attack != "none" && it->second > 0.0) {
      result.attack_success =
          std::max(0.0, (it->second - result.final_accuracy) / it->second);
    }
  }

  std::sort(board.cells.begin(), board.cells.end(),
            [](const CellResult& a, const CellResult& b) { return a.cell_id < b.cell_id; });
  return board;
}

}  // namespace fedguard::scenario
