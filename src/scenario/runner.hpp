#pragma once
// Executes a SweepMatrix cell by cell: each cell is an independent seeded
// short federation; accuracy comes from the run history and attacker-
// ejection precision/recall from deltas of the fl_* detection counters in
// the global obs registry (docs/OBSERVABILITY.md), so the leaderboard and
// the metrics exposition can never disagree.

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/matrix.hpp"

namespace fedguard::scenario {

/// One leaderboard row.
struct CellResult {
  std::string cell_id;
  std::string attack;
  long long malicious_pct = 0;
  std::string defense;
  std::string regime;
  std::size_t shards = 1;  // two-tier topology width (1 = single-tier)
  std::uint64_t seed = 0;  // the cell's derived experiment seed
  std::size_t rounds = 0;

  double final_accuracy = 0.0;     // trailing-window mean (last ⌈R/3⌉ rounds)
  /// The None cell of the same defense × regime × shards.
  double baseline_accuracy = 0.0;
  /// max(0, (baseline − final) / baseline): 0 = the defense fully held, 1 =
  /// the attack drove accuracy to zero. 0 for baseline cells by construction.
  double attack_success = 0.0;

  // Detection tallies over the whole cell run (obs registry deltas).
  std::uint64_t sampled_malicious = 0;
  std::uint64_t rejected_malicious = 0;  // true positives
  std::uint64_t rejected_benign = 0;     // false positives
  /// TP / (TP + FP); vacuously 1 when nothing was rejected.
  double ejection_precision = 1.0;
  /// TP / sampled_malicious; vacuously 1 when no malicious client responded.
  double ejection_recall = 1.0;
};

struct Leaderboard {
  std::string matrix_name;  // "smoke" / "default" / "full" / "custom"
  std::uint64_t seed = 0;   // the matrix seed every cell seed derives from
  std::size_t rounds = 0;
  std::vector<CellResult> cells;  // sorted by cell_id

  /// Row lookup by cell id; nullptr when absent.
  [[nodiscard]] const CellResult* find(const std::string& cell_id) const;
};

/// Run one cell (no baseline linkage: baseline_accuracy/attack_success stay 0).
[[nodiscard]] CellResult run_cell(const SweepMatrix& matrix, const Cell& cell);

/// Run every cell of the matrix and link attack success rates to the
/// None-attack baselines. Logs one line per cell at info level.
[[nodiscard]] Leaderboard run_sweep(const SweepMatrix& matrix,
                                    const std::string& matrix_name);

}  // namespace fedguard::scenario
