#pragma once
// Deterministic leaderboard serialization. The JSON writer is the
// reproducibility contract of the sweep: fixed field order, fixed "%.6f"
// float formatting, cells pre-sorted by id — two runs of the same matrix
// under serial kernels produce byte-identical files
// (tests/test_scenario.cpp pins this).

#include <iosfwd>
#include <string>

#include "scenario/runner.hpp"

namespace fedguard::scenario {

/// schema "fedguard-robustness-v1" (see docs/ROBUSTNESS_SWEEP.md).
[[nodiscard]] std::string to_json(const Leaderboard& board);
/// to_json + atomic-ish write (throws std::runtime_error on I/O failure).
void write_json(const Leaderboard& board, const std::string& path);

/// Human-readable summary: per attack × fraction × regime, the defenses
/// ranked by final accuracy.
void print_leaderboard(std::ostream& out, const Leaderboard& board);

}  // namespace fedguard::scenario
