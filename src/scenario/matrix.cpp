#include "scenario/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/rng.hpp"

namespace fedguard::scenario {

namespace {

// The sweep rosters, spelled as string literals on purpose: fedguard-lint
// (rule sweep-roster) greps this file for every name the enum → string
// tables in src/attacks/attack.cpp and src/core/experiment.cpp produce, so
// adding an AttackType or StrategyKind without extending these arrays fails
// the merge gate.
constexpr const char* kAttackRoster[] = {
    "none",    "same_value",    "sign_flip", "additive_noise", "label_flip",
    "scaling", "random_update", "covert",    "krum_evade",
};
constexpr const char* kDefenseRoster[] = {
    "fedavg", "geomed",    "krum",     "multi_krum", "median",   "trimmed_mean",
    "bulyan", "aux_audit", "spectral", "fedguard",   "fedcpa",   "norm_threshold",
};

std::string format_alpha(double alpha) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", alpha);
  return buffer;
}

/// Short federations tuned like tests/test_integration.cpp's tiny_config:
/// ~100 samples per client so per-client CVAEs stay trainable, six of ten
/// clients per round, and a Krum f-budget high enough for the sweep's
/// 40-50% adversary fractions.
core::ExperimentConfig sweep_base(std::uint64_t seed) {
  core::ExperimentConfig config = core::ExperimentConfig::small_scale();
  config.train_samples = 1000;
  config.test_samples = 200;
  config.auxiliary_samples = 250;
  config.num_clients = 10;
  config.clients_per_round = 6;
  config.rounds = 8;
  config.fedguard_total_samples = 100;
  config.krum_byzantine_fraction = 0.45;
  config.bulyan_byzantine_fraction = 0.2;
  config.spectral.pretrain_rounds = 3;
  config.spectral.pretrain_clients = 5;
  config.spectral.vae_epochs = 40;
  config.seed = seed;
  return config;
}

std::vector<attacks::AttackType> parse_attack_roster() {
  std::vector<attacks::AttackType> roster;
  for (const char* name : kAttackRoster) {
    roster.push_back(attacks::attack_type_from_string(name));
  }
  return roster;
}

std::vector<core::StrategyKind> parse_defense_roster() {
  std::vector<core::StrategyKind> roster;
  for (const char* name : kDefenseRoster) {
    roster.push_back(core::strategy_kind_from_string(name));
  }
  return roster;
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> items;
  std::string current;
  for (const char c : text) {
    if (c == ',') {
      if (!current.empty()) items.push_back(current);
      current.clear();
    } else if (c != ' ' && c != '\t') {
      current += c;
    }
  }
  if (!current.empty()) items.push_back(current);
  return items;
}

}  // namespace

std::string DataRegime::label() const {
  switch (scheme) {
    case data::PartitionScheme::Iid:
      return "iid";
    case data::PartitionScheme::Shard:
      return "shard";
    case data::PartitionScheme::Dirichlet:
      return "dirichlet-a" + format_alpha(alpha);
    case data::PartitionScheme::QuantitySkew:
      return "quantity_skew-a" + format_alpha(alpha);
  }
  return "unknown";
}

DataRegime parse_regime(const std::string& text) {
  DataRegime regime;
  const auto colon = text.find(':');
  const std::string scheme = text.substr(0, colon);
  regime.scheme = data::partition_scheme_from_string(scheme);
  if (colon != std::string::npos) {
    try {
      regime.alpha = std::stod(text.substr(colon + 1));
    } catch (const std::exception&) {
      throw std::invalid_argument{"parse_regime: bad alpha in '" + text + "'"};
    }
    if (regime.alpha <= 0.0) {
      throw std::invalid_argument{"parse_regime: alpha must be > 0 in '" + text + "'"};
    }
  }
  return regime;
}

std::string Cell::id() const {
  const auto pct = static_cast<long long>(std::llround(malicious_fraction * 100.0));
  std::string id = std::string{attacks::to_string(attack)} + "+" + std::to_string(pct) +
                   "/" + core::to_string(defense) + "/" + regime.label();
  // Single-tier ids stay exactly as before the shards axis existed, so the
  // committed leaderboard baseline keys remain valid.
  if (shards > 1) id += "/s" + std::to_string(shards);
  return id;
}

std::uint64_t Cell::cell_seed(std::uint64_t matrix_seed) const {
  // FNV-1a over the id, then two splitmix64 mixes with the matrix seed: the
  // cell seed is a pure function of (matrix seed, cell id) and nothing else.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : id()) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  std::uint64_t state = hash ^ matrix_seed;
  (void)util::splitmix64(state);
  return util::splitmix64(state);
}

std::vector<Cell> SweepMatrix::enumerate() const {
  std::vector<Cell> cells;
  const std::vector<std::size_t> shard_counts =
      shards_axis.empty() ? std::vector<std::size_t>{1} : shards_axis;
  for (const core::StrategyKind defense : defense_axis) {
    for (const DataRegime& regime : regime_axis) {
      for (const std::size_t shards : shard_counts) {
        Cell baseline;
        baseline.attack = attacks::AttackType::None;
        baseline.defense = defense;
        baseline.regime = regime;
        baseline.malicious_fraction = 0.0;
        baseline.shards = shards;
        cells.push_back(baseline);
        for (const attacks::AttackType attack : attack_axis) {
          if (attack == attacks::AttackType::None) continue;
          for (const double fraction : fraction_axis) {
            Cell cell;
            cell.attack = attack;
            cell.defense = defense;
            cell.regime = regime;
            cell.malicious_fraction = fraction;
            cell.shards = shards;
            cells.push_back(cell);
          }
        }
      }
    }
  }
  std::sort(cells.begin(), cells.end(),
            [](const Cell& a, const Cell& b) { return a.id() < b.id(); });
  return cells;
}

core::ExperimentConfig SweepMatrix::cell_config(const Cell& cell) const {
  core::ExperimentConfig config = base;
  config.attack = cell.attack;
  config.malicious_fraction = cell.malicious_fraction;
  config.strategy = cell.defense;
  config.partition_scheme = cell.regime.scheme;
  config.dirichlet_alpha = cell.regime.alpha;
  config.shards = cell.shards;
  config.seed = cell.cell_seed(base.seed);
  return config;
}

SweepMatrix smoke_matrix(std::uint64_t seed) {
  SweepMatrix matrix;
  matrix.base = sweep_base(seed);
  matrix.attack_axis = {attacks::AttackType::SignFlip, attacks::AttackType::Covert};
  matrix.defense_axis = {core::StrategyKind::FedAvg, core::StrategyKind::Krum,
                         core::StrategyKind::FedCPA, core::StrategyKind::FedGuard};
  matrix.regime_axis = {DataRegime{data::PartitionScheme::Iid, 10.0}};
  matrix.fraction_axis = {0.4};
  // Pin the two-tier robustness cost alongside the single-tier rows: /s2
  // cells run the same federations through the sharded selection path.
  matrix.shards_axis = {1, 2};
  return matrix;
}

SweepMatrix default_matrix(std::uint64_t seed) {
  SweepMatrix matrix;
  matrix.base = sweep_base(seed);
  matrix.attack_axis = {
      attacks::AttackType::SameValue, attacks::AttackType::SignFlip,
      attacks::AttackType::AdditiveNoise, attacks::AttackType::LabelFlip,
      attacks::AttackType::Covert, attacks::AttackType::KrumEvade,
  };
  matrix.defense_axis = {
      core::StrategyKind::FedAvg,        core::StrategyKind::Krum,
      core::StrategyKind::Median,        core::StrategyKind::TrimmedMean,
      core::StrategyKind::NormThreshold, core::StrategyKind::FedGuard,
      core::StrategyKind::FedCPA,
  };
  matrix.regime_axis = {
      DataRegime{data::PartitionScheme::Iid, 10.0},
      DataRegime{data::PartitionScheme::Dirichlet, 0.5},
  };
  matrix.fraction_axis = {0.4};
  return matrix;
}

SweepMatrix full_matrix(std::uint64_t seed) {
  SweepMatrix matrix;
  matrix.base = sweep_base(seed);
  matrix.attack_axis = attack_roster();
  matrix.defense_axis = defense_roster();
  matrix.regime_axis = {
      DataRegime{data::PartitionScheme::Iid, 10.0},
      DataRegime{data::PartitionScheme::Dirichlet, 0.5},
      DataRegime{data::PartitionScheme::QuantitySkew, 0.5},
  };
  matrix.fraction_axis = {0.2, 0.4};
  return matrix;
}

const std::vector<attacks::AttackType>& attack_roster() {
  static const std::vector<attacks::AttackType> roster = parse_attack_roster();
  return roster;
}

const std::vector<core::StrategyKind>& defense_roster() {
  static const std::vector<core::StrategyKind> roster = parse_defense_roster();
  return roster;
}

void apply_scenario_values(SweepMatrix& matrix,
                           const std::map<std::string, std::string>& values) {
  for (const auto& [key, value] : values) {
    if (key.rfind("scenario_", 0) != 0) continue;  // base-config keys
    if (key == "scenario_attacks") {
      matrix.attack_axis.clear();
      for (const std::string& name : split_list(value)) {
        matrix.attack_axis.push_back(attacks::attack_type_from_string(name));
      }
    } else if (key == "scenario_defenses") {
      matrix.defense_axis.clear();
      for (const std::string& name : split_list(value)) {
        matrix.defense_axis.push_back(core::strategy_kind_from_string(name));
      }
    } else if (key == "scenario_regimes") {
      matrix.regime_axis.clear();
      for (const std::string& name : split_list(value)) {
        matrix.regime_axis.push_back(parse_regime(name));
      }
    } else if (key == "scenario_fractions") {
      matrix.fraction_axis.clear();
      for (const std::string& item : split_list(value)) {
        double fraction = 0.0;
        try {
          fraction = std::stod(item);
        } catch (const std::exception&) {
          throw std::invalid_argument{"scenario_fractions: bad number '" + item + "'"};
        }
        if (fraction < 0.0 || fraction >= 1.0) {
          throw std::invalid_argument{"scenario_fractions: '" + item +
                                      "' outside [0, 1)"};
        }
        matrix.fraction_axis.push_back(fraction);
      }
    } else if (key == "scenario_shards") {
      matrix.shards_axis.clear();
      for (const std::string& item : split_list(value)) {
        std::size_t shards = 0;
        try {
          shards = static_cast<std::size_t>(std::stoull(item));
        } catch (const std::exception&) {
          throw std::invalid_argument{"scenario_shards: bad number '" + item + "'"};
        }
        if (shards == 0) {
          throw std::invalid_argument{"scenario_shards: shard counts must be positive"};
        }
        matrix.shards_axis.push_back(shards);
      }
    } else if (key == "scenario_rounds") {
      matrix.base.rounds = static_cast<std::size_t>(std::stoll(value));
    } else {
      throw std::invalid_argument{"unknown scenario key '" + key + "'"};
    }
  }
}

}  // namespace fedguard::scenario
