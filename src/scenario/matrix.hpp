#pragma once
// Declarative robustness sweep matrix (ROADMAP item 3, ByzFL-style —
// arXiv 2505.24802): {attack} × {defense} × {data regime} × {malicious
// fraction}, each cell a fully-specified short federation. Cells carry a
// stable human-readable id ("covert+40/krum/iid") and derive their
// experiment seed purely from (matrix seed, cell id), so any leaderboard row
// is replayable in isolation — a diff in BENCH_robustness.json is a science
// change, never run-order noise.
//
// One None-attack baseline cell per defense × regime rides along in every
// enumeration; the runner computes each cell's attack success rate against
// the matching baseline.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace fedguard::scenario {

/// One data-heterogeneity regime on the sweep's regime axis.
struct DataRegime {
  data::PartitionScheme scheme = data::PartitionScheme::Iid;
  double alpha = 10.0;  // Dirichlet / quantity-skew concentration
  /// Stable axis label: "iid", "dirichlet-a0.5", "shard",
  /// "quantity_skew-a1". Alpha is only part of the label for the schemes
  /// that read it.
  [[nodiscard]] std::string label() const;
};

/// Parse a regime label of the form "scheme" or "scheme:alpha"
/// (e.g. "dirichlet:0.5"); throws std::invalid_argument on bad input.
[[nodiscard]] DataRegime parse_regime(const std::string& text);

/// One fully-resolved sweep cell.
struct Cell {
  attacks::AttackType attack = attacks::AttackType::None;
  core::StrategyKind defense = core::StrategyKind::FedAvg;
  DataRegime regime;
  double malicious_fraction = 0.0;  // 0 for the None baseline cells
  /// Two-tier topology width (ExperimentConfig::shards). 1 = single-tier;
  /// >1 exercises the sharded selection path, whose robustness cost the
  /// leaderboard pins (docs/SHARDING.md).
  std::size_t shards = 1;

  /// "<attack>+<pct>/<defense>/<regime>", e.g. "covert+40/krum/iid"; sharded
  /// cells append "/s<shards>" ("covert+40/krum/iid/s2") so every
  /// single-tier id — and the committed baseline pinned to them — is stable.
  [[nodiscard]] std::string id() const;
  /// Experiment seed for this cell: a splitmix64 hash of the matrix seed and
  /// the cell id — nothing else. Replaying (seed, id) reproduces the cell.
  [[nodiscard]] std::uint64_t cell_seed(std::uint64_t matrix_seed) const;
};

struct SweepMatrix {
  /// Per-cell base configuration; enumerate()'s cells override the attack,
  /// strategy, partition and seed fields on top of it.
  core::ExperimentConfig base;
  std::vector<attacks::AttackType> attack_axis;
  std::vector<core::StrategyKind> defense_axis;
  std::vector<DataRegime> regime_axis;
  std::vector<double> fraction_axis;
  /// Topology axis: every listed shard count gets its own cell (and its own
  /// None baseline per defense × regime). Empty is treated as {1}.
  std::vector<std::size_t> shards_axis{1};

  /// Cross product of the axes plus one None baseline per defense × regime,
  /// sorted by cell id. AttackType::None on the attack axis is ignored (the
  /// baselines already cover it).
  [[nodiscard]] std::vector<Cell> enumerate() const;
  /// The base config with one cell's coordinates applied.
  [[nodiscard]] core::ExperimentConfig cell_config(const Cell& cell) const;
};

/// Tiny 2-attack × 3-defense (+FedGuard) IID smoke matrix — seconds per cell;
/// the committed baseline in scripts/robustness_baseline.json is pinned to it.
[[nodiscard]] SweepMatrix smoke_matrix(std::uint64_t seed);
/// The paper's four attacks plus both adaptive attacks over the headline
/// defenses, IID + label-skew regimes.
[[nodiscard]] SweepMatrix default_matrix(std::uint64_t seed);
/// Every AttackType × every registered strategy (the full rosters below) ×
/// three regimes × two fractions. Hours, not seconds.
[[nodiscard]] SweepMatrix full_matrix(std::uint64_t seed);

/// The sweep rosters: every AttackType name and every registered strategy
/// name, as used by full_matrix(). fedguard_lint.py (rule sweep-roster)
/// cross-checks these against the enum → string tables so a new attack or
/// defense cannot silently stay off the leaderboard.
[[nodiscard]] const std::vector<attacks::AttackType>& attack_roster();
[[nodiscard]] const std::vector<core::StrategyKind>& defense_roster();

/// Apply scenario_* descriptor keys (see docs/CONFIG_REFERENCE.md) on top of
/// a matrix; unknown scenario_* keys throw, non-scenario keys are ignored
/// (they belong to the base experiment config).
void apply_scenario_values(SweepMatrix& matrix,
                           const std::map<std::string, std::string>& values);

}  // namespace fedguard::scenario
