#pragma once
// Two-tier hierarchical federation (ROADMAP item 2): edge ShardAggregators
// each own a client cohort on their own reactor thread and partially
// aggregate uploads as they arrive; a root HierarchicalServer samples
// clients, fans the round out to the shards, merges their ShardPartials
// through the strategy's mergeable-accumulator seam, applies the server
// learning rate, and evaluates. docs/SHARDING.md has the topology diagram
// and the exact-merge vs metadata-routing contract.
//
// Client ownership is contiguous by id: client c of N belongs to shard
// floor(c*S/N) and connects to that shard's port, speaking the unchanged
// Hello/RoundRequest/RoundReply protocol — run_remote_client works verbatim
// against a shard. Within a shard, round cohort slots follow the root's
// sample order, and exact strategies (FedAvg) fold replies into the partial
// in ascending slot order as they land (dynamic batching, no per-round
// barrier), so the streamed fold is bit-identical to the batch fold.
//
// Threading: each shard runs one reactor thread; the root communicates
// through a mutex-guarded mailbox (start_round / stop) plus Reactor::wake,
// and collects partials with a deadline-bounded condition-variable wait.
// A shard that dies (kill) or misses the deadline simply contributes an
// empty partial — the root merges whatever arrived (graceful degradation).

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "data/dataset.hpp"
#include "defenses/aggregation.hpp"
#include "fl/metrics.hpp"
#include "models/classifier.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"
#include "net/telemetry_http.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/thread_annotations.hpp"

namespace fedguard::net {

struct ShardConfig {
  std::size_t shard_id = 0;
  /// Reactor cycle length; bounds command-pickup latency.
  std::chrono::milliseconds poll_timeout{20};
  /// Per-round reply-collection deadline; the shard publishes whatever
  /// arrived when it expires.
  std::chrono::milliseconds round_timeout{30000};
  /// Close connections idle longer than this between rounds (0 = never).
  std::chrono::milliseconds idle_timeout{0};
  /// Kernel accept backlog: shards absorb hundreds of near-simultaneous
  /// joins at federation start.
  int listen_backlog = 1024;
  util::WireCodec psi_codec = util::WireCodec::Fp32;
  std::size_t psi_chunk = util::kDefaultQ8ChunkSize;
  /// Dedicated live-scrape port (0 = none). Either way the data port also
  /// answers HTTP scrapes — the reactor auto-detects GET/HEAD prefixes.
  std::uint16_t http_port = 0;
};

/// Edge aggregator: owns a listener + reactor + one cohort of clients and a
/// private strategy instance (thread confinement — strategies keep scratch).
class ShardAggregator {
 public:
  ShardAggregator(ShardConfig config,
                  std::unique_ptr<defenses::AggregationStrategy> strategy);
  ~ShardAggregator();
  ShardAggregator(const ShardAggregator&) = delete;
  ShardAggregator& operator=(const ShardAggregator&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }
  [[nodiscard]] std::size_t shard_id() const noexcept { return config_.shard_id; }

  /// Clients that have completed the Hello handshake (root's accept gate).
  [[nodiscard]] std::size_t registered_clients() const;
  [[nodiscard]] bool alive() const;

  /// Fan one round out to this shard's slice of the sample. `cohort` lists
  /// the sampled client ids this shard owns, in root sample order (= cohort
  /// slot order); the pre-encoded RoundRequest payload and the raw globals
  /// (for the strategy's AggregationContext) are shared across shards.
  struct RoundCommand {
    std::size_t round = 0;
    std::vector<int> cohort;
    std::shared_ptr<const std::vector<std::byte>> request_payload;
    std::shared_ptr<const std::vector<float>> global_parameters;
    std::size_t theta_dim = 0;
  };
  void start_round(RoundCommand command);

  /// Block until this shard publishes `round`'s partial or `deadline`
  /// passes. True = `out` holds the partial (possibly with client_count 0
  /// when nobody in the cohort replied).
  bool wait_partial(std::chrono::steady_clock::time_point deadline, std::size_t round,
                    defenses::ShardPartial& out);

  /// Graceful stop: broadcast Shutdown to the cohort, close, join.
  void shutdown();
  /// Chaos stop: drop every link and the listener without a word (clients
  /// see a dead peer) and join. Idempotent, as is shutdown().
  void kill();

 private:
  enum class Command { None, Round, Shutdown, Kill };

  void thread_main();
  [[nodiscard]] Command take_command(RoundCommand& round_command);
  void begin_round(RoundCommand command);
  void handle_message(Reactor::ConnectionId connection, Message&& message);
  void handle_reply(Reactor::ConnectionId connection, const Message& message);
  void handle_telemetry(const Message& message);
  void fold_ready_rows();
  void finish_round_if_done();
  void publish_partial();
  void stop(bool graceful);

  ShardConfig config_;
  std::unique_ptr<defenses::AggregationStrategy> strategy_;
  TcpListener listener_;
  std::unique_ptr<TcpListener> http_listener_;  // ShardConfig::http_port != 0
  Reactor reactor_;

  // ---- Reactor-thread-only round state (no locks needed) --------------------
  std::unordered_map<int, Reactor::ConnectionId> client_connections_;
  std::unordered_map<Reactor::ConnectionId, int> connection_clients_;
  bool in_round_ = false;
  RoundCommand round_command_;
  std::chrono::steady_clock::time_point round_deadline_;
  defenses::UpdateMatrix arena_;
  std::unordered_map<Reactor::ConnectionId, std::size_t> pending_slots_;
  std::vector<bool> slot_filled_;
  std::size_t slots_missing_ = 0;  // cohort members with no live connection
  std::size_t next_fold_ = 0;      // exact path: first unfolded slot
  bool exact_ = false;
  defenses::ShardPartial building_;
  std::vector<std::size_t> filled_slots_;  // selection scratch (metadata path)
  std::vector<Reactor::ConnectionId> scratch_connection_ids_;  // stop() iteration

  // ---- Root <-> shard mailbox ----------------------------------------------
  mutable util::Mutex mutex_;
  util::CondVar cv_;
  Command command_ FEDGUARD_GUARDED_BY(mutex_) = Command::None;
  RoundCommand pending_round_ FEDGUARD_GUARDED_BY(mutex_);
  std::size_t registered_ FEDGUARD_GUARDED_BY(mutex_) = 0;
  bool published_ FEDGUARD_GUARDED_BY(mutex_) = false;
  std::size_t published_round_ FEDGUARD_GUARDED_BY(mutex_) = 0;
  defenses::ShardPartial published_partial_ FEDGUARD_GUARDED_BY(mutex_);
  bool running_ FEDGUARD_GUARDED_BY(mutex_) = true;

  // Per-shard instruments (docs/OBSERVABILITY.md §net_shard_*).
  obs::Counter replies_total_;
  obs::Counter corrupt_frames_total_;
  obs::Counter rounds_total_;
  obs::Counter timeouts_total_;
  obs::Counter telemetry_reports_total_;
  obs::Counter telemetry_events_total_;
  obs::Gauge arena_capacity_bytes_;

  std::thread thread_;  // last member: starts after everything is built
};

struct HierarchicalServerConfig {
  std::size_t shards = 2;              // S edge aggregators
  std::size_t expected_clients = 4;    // N, contiguously partitioned over S
  std::size_t clients_per_round = 2;   // m, sampled over all N
  std::size_t rounds = 1;
  float server_learning_rate = 1.0f;
  std::size_t eval_batch_size = 256;
  std::uint64_t seed = 1;
  std::size_t accept_timeout_ms = 30000;
  std::size_t round_timeout_ms = 30000;
  std::size_t reactor_poll_timeout_ms = 20;
  std::size_t reactor_idle_timeout_ms = 0;  // 0 = no idle sweep
  util::WireCodec psi_codec = util::WireCodec::Fp32;
  std::size_t psi_chunk = util::kDefaultQ8ChunkSize;
  /// Live scrape base port (0 = exposition off): the root serves http_port
  /// via a standalone TelemetryHttpServer; shard i serves http_port + 1 + i
  /// on its own reactor. Shard data ports additionally auto-detect scrapes.
  std::uint16_t http_port = 0;
  /// Chaos hook: (shard, round) -> kill that shard at the round's start.
  std::function<bool(std::size_t, std::size_t)> shard_kill_predicate;
};

/// Root merger: samples with fl::Server's rng semantics, drives the shards,
/// merges their partials, applies η, evaluates.
class HierarchicalServer {
 public:
  /// `strategy_factory` builds one private strategy instance per shard plus
  /// the root's merge instance (call count: shards + 1).
  HierarchicalServer(
      HierarchicalServerConfig config,
      const std::function<std::unique_ptr<defenses::AggregationStrategy>()>& strategy_factory,
      const data::Dataset& test_set, models::ClassifierArch arch,
      models::ImageGeometry geometry);
  ~HierarchicalServer();
  HierarchicalServer(const HierarchicalServer&) = delete;
  HierarchicalServer& operator=(const HierarchicalServer&) = delete;

  /// The shard that owns client id c (contiguous partition floor(c*S/N)).
  [[nodiscard]] std::size_t shard_of(std::size_t client_id) const noexcept;
  [[nodiscard]] std::uint16_t shard_port(std::size_t shard) const;
  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t live_shards() const;

  /// Block until every expected client registered with its shard; throws
  /// std::runtime_error at the accept deadline.
  void await_clients();
  [[nodiscard]] fl::RoundRecord run_round(std::size_t round);
  /// await_clients + all rounds + graceful shutdown of every shard.
  [[nodiscard]] fl::RunHistory run();

  [[nodiscard]] std::span<const float> global_parameters() const noexcept {
    return global_parameters_;
  }
  void kill_shard(std::size_t shard);

 private:
  void evaluate_round(fl::RoundRecord& record);

  HierarchicalServerConfig config_;
  std::unique_ptr<TelemetryHttpServer> http_server_;  // config.http_port != 0
  std::vector<std::unique_ptr<ShardAggregator>> shards_;
  std::unique_ptr<defenses::AggregationStrategy> merge_strategy_;
  const data::Dataset& test_set_;
  models::ImageGeometry geometry_;
  std::unique_ptr<models::Classifier> eval_classifier_;
  std::vector<float> global_parameters_;
  util::Rng rng_;
  // Round-persistent scratch.
  std::vector<std::size_t> sampled_;
  std::vector<std::vector<int>> cohorts_;
  std::vector<defenses::ShardPartial> partials_;
  defenses::AggregationResult result_;
  std::vector<std::size_t> eval_indices_;
  obs::Counter rounds_total_;
  obs::Counter degraded_rounds_total_;
  obs::Histogram round_seconds_;
};

}  // namespace fedguard::net
