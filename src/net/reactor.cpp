#include "net/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/logging.hpp"

namespace fedguard::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error{std::string{what} + ": " + std::strerror(errno)};
}

epoll_event make_event(std::uint32_t events, std::uint64_t tag) noexcept {
  epoll_event event{};
  event.events = events;
  event.data.u64 = tag;
  return event;
}

}  // namespace

Reactor::Reactor(Callbacks callbacks) : callbacks_{std::move(callbacks)} {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw_errno("eventfd");
  }
  epoll_event event = make_event(EPOLLIN, kWakeTag);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event) != 0) {
    ::close(wake_fd_);
    ::close(epoll_fd_);
    throw_errno("epoll_ctl(wake)");
  }
}

Reactor::~Reactor() {
  // Destruction is not a graceful shutdown: streams close via RAII and
  // on_close is not fired (the owner tearing the reactor down already knows).
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Reactor::listen(TcpListener& listener) {
  if (listener_ != nullptr) throw std::logic_error{"Reactor::listen: already listening"};
  listener.set_nonblocking(true);
  // Level-triggered on purpose: when accept_pending stops early (EMFILE) the
  // queued peer re-triggers the next cycle instead of being lost.
  epoll_event event = make_event(EPOLLIN, kListenerTag);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener.fd(), &event) != 0) {
    throw_errno("epoll_ctl(listener)");
  }
  listener_ = &listener;
}

void Reactor::listen_also(TcpListener& listener) {
  if (extra_listeners_.size() >= 64) {
    throw std::logic_error{"Reactor::listen_also: too many listeners"};
  }
  listener.set_nonblocking(true);
  // Level-triggered, same EMFILE rationale as the primary listener.
  epoll_event event =
      make_event(EPOLLIN, kExtraListenerBase + extra_listeners_.size());
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener.fd(), &event) != 0) {
    throw_errno("epoll_ctl(listener)");
  }
  extra_listeners_.push_back(&listener);
}

void Reactor::stop_listening() {
  if (listener_ != nullptr) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listener_->fd(), nullptr);
    listener_ = nullptr;
  }
  for (TcpListener* extra : extra_listeners_) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, extra->fd(), nullptr);
  }
  extra_listeners_.clear();
}

void Reactor::set_http_responder(obs::HttpResponder responder) {
  http_ = std::move(responder);
}

Reactor::ConnectionId Reactor::register_connection(TcpStream stream) {
  stream.set_nonblocking(true);
  const ConnectionId id = next_id_++;
  Connection connection;
  connection.stream = std::move(stream);
  connection.read_buffer.resize(kFrameHeaderBytes);
  connection.last_activity = std::chrono::steady_clock::now();
  const int fd = connection.stream.fd();
  connections_.emplace(id, std::move(connection));
  epoll_event event = make_event(EPOLLIN | EPOLLET | EPOLLRDHUP, id);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
    connections_.erase(id);
    throw_errno("epoll_ctl(connection)");
  }
  return id;
}

Reactor::ConnectionId Reactor::add_connection(TcpStream stream) {
  return register_connection(std::move(stream));
}

void Reactor::accept_pending(TcpListener& listener) {
  // on_accept may call stop_listening; re-check registration every lap so an
  // accept loop never outlives the listener's borrow.
  const auto still_registered = [&]() noexcept {
    if (listener_ == &listener) return true;
    for (const TcpListener* extra : extra_listeners_) {
      if (extra == &listener) return true;
    }
    return false;
  };
  while (still_registered()) {
    std::optional<TcpStream> stream = listener.accept_nonblocking();
    if (!stream) break;
    const ConnectionId id = register_connection(std::move(*stream));
    if (callbacks_.on_accept) callbacks_.on_accept(id);
  }
}

std::size_t Reactor::poll_once(std::chrono::milliseconds timeout) {
  epoll_event events[64];
  int ready;
  for (;;) {
    ready = ::epoll_wait(epoll_fd_, events, 64, static_cast<int>(timeout.count()));
    if (ready >= 0) break;
    if (errno == EINTR) continue;
    throw_errno("epoll_wait");
  }
  std::size_t handled = 0;
  for (int i = 0; i < ready; ++i) {
    const std::uint64_t tag = events[i].data.u64;
    const std::uint32_t mask = events[i].events;
    ++handled;
    if (tag == kWakeTag) {
      std::uint64_t drained = 0;
      while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
      }
      continue;
    }
    if (tag == kListenerTag) {
      if (listener_ != nullptr) accept_pending(*listener_);
      continue;
    }
    if (tag >= kExtraListenerBase) {
      const std::size_t index = static_cast<std::size_t>(tag - kExtraListenerBase);
      if (index < extra_listeners_.size()) accept_pending(*extra_listeners_[index]);
      continue;
    }
    // The connection may have been dropped by an earlier event in this batch.
    if (connections_.find(tag) == connections_.end()) continue;
    if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
      // Fatal socket state. EPOLLRDHUP alone (peer half-close) still lets the
      // read path drain buffered bytes first, so it is not handled here.
      drop(tag);
      continue;
    }
    if ((mask & EPOLLOUT) != 0) handle_writable(tag);
    if (connections_.find(tag) == connections_.end()) continue;
    if ((mask & (EPOLLIN | EPOLLRDHUP)) != 0) handle_readable(tag);
  }
  return handled;
}

void Reactor::handle_readable(ConnectionId id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  Connection& connection = it->second;
  connection.last_activity = std::chrono::steady_clock::now();
  // Edge-triggered: drain until WouldBlock or the connection drops.
  for (;;) {
    if (connection.read_state == Connection::ReadState::Http &&
        connection.read_buffer.size() - connection.read_pos < 128) {
      // HTTP request lines arrive without a length prefix: grow the buffer
      // incrementally; the parser rejects anything past kMaxHttpRequestBytes.
      connection.read_buffer.resize(connection.read_pos + 512);
    }
    std::span<std::byte> remaining{connection.read_buffer.data() + connection.read_pos,
                                   connection.read_buffer.size() - connection.read_pos};
    std::size_t transferred = 0;
    IoStatus status;
    try {
      status = connection.stream.read_some(remaining, transferred);
    } catch (const std::exception& error) {
      util::log_warn("reactor: read error on connection %llu: %s",
                     static_cast<unsigned long long>(id), error.what());
      drop(id);
      return;
    }
    if (status == IoStatus::WouldBlock) return;
    if (status == IoStatus::Closed) {
      drop(id);
      return;
    }
    connection.read_pos += transferred;
    if (connection.read_state == Connection::ReadState::HttpDrain) {
      // Response already queued; anything else the scraper sends (request
      // headers, pipelined requests) is discarded until the close.
      connection.read_pos = 0;
      continue;
    }
    if (connection.read_state == Connection::ReadState::Http) {
      if (!advance_http(id, connection)) return;
      continue;
    }
    if (connection.read_state == Connection::ReadState::Header &&
        http_.enabled() && connection.read_pos >= 5 &&
        obs::looks_like_http(
            {connection.read_buffer.data(), connection.read_pos})) {
      // A scraper, not a federation peer: the buffered prefix is an HTTP
      // method token, which can never collide with the FGNM frame magic.
      connection.read_state = Connection::ReadState::Http;
      connection.read_buffer.resize(connection.read_pos);
      if (!advance_http(id, connection)) return;
      continue;
    }
    if (connection.read_pos == connection.read_buffer.size()) {
      if (!advance_frame(id, connection)) return;
    }
  }
}

bool Reactor::advance_http(ConnectionId id, Connection& connection) {
  const obs::HttpRequest request = obs::parse_http_request(
      {connection.read_buffer.data(), connection.read_pos});
  if (request.status == obs::HttpParseStatus::NeedMore) return true;
  if (request.status == obs::HttpParseStatus::Bad) {
    // Garbage or oversized request line: same fate as a desynced frame
    // stream, and the drop never touches any other connection.
    drop(id);
    return false;
  }
  const std::string response = obs::http_response_for(http_, request.path);
  std::vector<std::byte> bytes(response.size());
  std::memcpy(bytes.data(), response.data(), response.size());
  connection.read_state = Connection::ReadState::HttpDrain;
  connection.read_pos = 0;
  connection.close_after_flush = true;
  connection.write_queue.push_back(std::move(bytes));
  flush_writes(id, connection);
  return connections_.find(id) != connections_.end();
}

bool Reactor::advance_frame(ConnectionId id, Connection& connection) {
  if (connection.read_state == Connection::ReadState::Header) {
    try {
      connection.header = decode_frame_header(connection.read_buffer);
    } catch (const DecodeError& error) {
      // A bad header (magic/type/length) desyncs the byte stream: the
      // callback is informed but the connection cannot be saved.
      if (callbacks_.on_decode_error) (void)callbacks_.on_decode_error(id, error);
      drop(id);
      return false;
    }
    connection.read_pos = 0;
    if (connection.header.payload_bytes == 0) {
      return advance_frame_payload_done(id, connection);
    }
    connection.read_state = Connection::ReadState::Payload;
    connection.read_buffer.resize(connection.header.payload_bytes);
    return true;
  }
  return advance_frame_payload_done(id, connection);
}

bool Reactor::advance_frame_payload_done(ConnectionId id, Connection& connection) {
  try {
    verify_payload_crc(connection.header, connection.read_buffer);
  } catch (const DecodeError& error) {
    // CRC mismatch on a well-framed payload: the stream is still in sync, so
    // the callback may elect to keep the connection.
    const bool keep =
        callbacks_.on_decode_error ? callbacks_.on_decode_error(id, error) : false;
    if (!keep) {
      drop(id);
      return false;
    }
    connection.read_state = Connection::ReadState::Header;
    connection.read_buffer.assign(kFrameHeaderBytes, std::byte{0});
    connection.read_pos = 0;
    return true;
  }
  Message message;
  message.type = connection.header.type;
  message.payload = std::move(connection.read_buffer);
  connection.read_state = Connection::ReadState::Header;
  connection.read_buffer.assign(kFrameHeaderBytes, std::byte{0});
  connection.read_pos = 0;
  if (callbacks_.on_message) callbacks_.on_message(id, std::move(message));
  // The callback may have closed the connection (e.g. a protocol violation).
  return connections_.find(id) != connections_.end();
}

bool Reactor::send(ConnectionId id, const Message& message) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return false;
  Connection& connection = it->second;
  connection.write_queue.push_back(encode_frame(message));
  flush_writes(id, connection);
  return connections_.find(id) != connections_.end();
}

void Reactor::handle_writable(ConnectionId id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  it->second.last_activity = std::chrono::steady_clock::now();
  flush_writes(id, it->second);
}

void Reactor::arm_writes(Connection& connection, int fd, ConnectionId id, bool enabled) {
  if (connection.write_armed == enabled) return;
  const std::uint32_t base = EPOLLIN | EPOLLET | EPOLLRDHUP;
  epoll_event event = make_event(enabled ? (base | EPOLLOUT) : base, id);
  // EPOLL_CTL_MOD re-checks readiness, so arming after a partial write never
  // misses the socket becoming writable in between.
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0) {
    throw_errno("epoll_ctl(mod)");
  }
  connection.write_armed = enabled;
}

void Reactor::flush_writes(ConnectionId id, Connection& connection) {
  while (!connection.write_queue.empty()) {
    const std::vector<std::byte>& front = connection.write_queue.front();
    std::span<const std::byte> remaining{front.data() + connection.write_offset,
                                         front.size() - connection.write_offset};
    std::size_t transferred = 0;
    IoStatus status;
    try {
      status = connection.stream.write_some(remaining, transferred);
    } catch (const std::exception& error) {
      util::log_warn("reactor: write error on connection %llu: %s",
                     static_cast<unsigned long long>(id), error.what());
      drop(id);
      return;
    }
    if (status == IoStatus::Closed) {
      drop(id);
      return;
    }
    if (status == IoStatus::WouldBlock) {
      arm_writes(connection, connection.stream.fd(), id, true);
      return;
    }
    connection.write_offset += transferred;
    if (connection.write_offset == front.size()) {
      connection.write_queue.pop_front();
      connection.write_offset = 0;
    }
  }
  if (connection.close_after_flush) {
    // One-shot HTTP exchange fully written: close our end.
    drop(id);
    return;
  }
  arm_writes(connection, connection.stream.fd(), id, false);
}

std::size_t Reactor::pending_write_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& [id, connection] : connections_) {
    for (const auto& buffer : connection.write_queue) total += buffer.size();
    total -= connection.write_offset;
  }
  return total;
}

void Reactor::close_connection(ConnectionId id) { drop(id); }

void Reactor::drop(ConnectionId id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second.stream.fd(), nullptr);
  connections_.erase(it);
  if (callbacks_.on_close) callbacks_.on_close(id);
}

std::size_t Reactor::sweep_idle(std::chrono::milliseconds max_idle) {
  const auto cutoff = std::chrono::steady_clock::now() - max_idle;
  scratch_ids_.clear();
  for (const auto& [id, connection] : connections_) {
    if (connection.last_activity < cutoff) scratch_ids_.push_back(id);
  }
  for (const ConnectionId id : scratch_ids_) drop(id);
  return scratch_ids_.size();
}

void Reactor::wake() {
  const std::uint64_t one = 1;
  // Best-effort: a full eventfd counter already guarantees a pending wakeup.
  (void)!::write(wake_fd_, &one, sizeof(one));
}

}  // namespace fedguard::net
