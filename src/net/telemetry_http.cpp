#include "net/telemetry_http.hpp"

#include <chrono>
#include <utility>

#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace fedguard::net {

TelemetryHttpServer::TelemetryHttpServer(std::uint16_t port,
                                         obs::HttpResponder responder)
    : listener_{port}, reactor_{Reactor::Callbacks{}} {
  reactor_.set_http_responder(std::move(responder));
  reactor_.listen(listener_);
  thread_ = std::thread{[this] { serve(); }};
}

TelemetryHttpServer::~TelemetryHttpServer() {
  stop_.store(true, std::memory_order_release);
  reactor_.wake();
  if (thread_.joinable()) thread_.join();
}

void TelemetryHttpServer::serve() {
  using namespace std::chrono_literals;
  while (!stop_.load(std::memory_order_acquire)) {
    try {
      reactor_.poll_once(200ms);
    } catch (const std::exception& error) {
      // Scraping must never take the host down: log and keep serving.
      util::log_warn("telemetry-http: %s", error.what());
    }
    // A scraper that connects but never finishes its request line must not
    // pin a connection slot forever.
    (void)reactor_.sweep_idle(10'000ms);
  }
  reactor_.stop_listening();
}

obs::HttpResponder make_registry_responder(const std::string& rounds_counter,
                                           const std::string& degraded_counter) {
  obs::HttpResponder responder;
  responder.metrics_text = [] {
    return obs::Registry::global().prometheus_text();
  };
  responder.metrics_json = [] { return obs::Registry::global().json_snapshot(); };
  responder.healthz = [rounds_counter, degraded_counter] {
    return obs::healthz_json(rounds_counter, degraded_counter);
  };
  return responder;
}

}  // namespace fedguard::net
