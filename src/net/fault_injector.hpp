#pragma once
// Seeded fault injection for the distributed federation. Robust-FL
// frameworks treat crash/omission faults as first-class alongside Byzantine
// updates; this harness makes every such fault *replayable*: all decisions
// derive from (plan seed, client id, round) alone — never from wall-clock
// time or thread scheduling — so a chaos run reproduces byte-identical
// round records from its seed.
//
// The injector sits on the client side of the socket path
// (net::run_remote_client) and perturbs the RoundReply:
//
//   Drop        client crashes before doing the round's work: no training,
//               no reply — the server's round deadline expires (timeout)
//   Delay       reply is sent delay_ms late (a straggler that still makes
//               the deadline unless delay_ms exceeds it)
//   Truncate    full header + partial payload, then the link closes — the
//               server sees a truncated frame (corrupt)
//   BitFlip     one payload bit flipped in an otherwise intact frame — the
//               CRC check catches it (corrupt); the link stays usable
//   Disconnect  the link closes mid-header — the server sees EOF (dropout)
//   NeverConnect  the client process never joins the federation at all
//               (exercises the accept-phase deadline)
//
// Per-kind injection counters let tests assert that the server-side round
// records account for every injected fault exactly.

#include <array>
#include <atomic>
#include <cstdint>

#include "util/rng.hpp"

namespace fedguard::net {

enum class FaultKind : std::size_t {
  None = 0,
  Drop,
  Delay,
  Truncate,
  BitFlip,
  Disconnect,
  NeverConnect,
};
inline constexpr std::size_t kFaultKindCount = 7;

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

/// Per-round fault probabilities (independent; at most one fault fires per
/// (client, round), chosen by a single uniform draw over the cumulative
/// probabilities in declaration order).
struct FaultPlan {
  double drop_probability = 0.0;
  double delay_probability = 0.0;
  double truncate_probability = 0.0;
  double bit_flip_probability = 0.0;
  double disconnect_probability = 0.0;
  /// Per *client* (not per round): the client never connects at all.
  double never_connect_probability = 0.0;
  std::size_t delay_ms = 20;
  std::uint64_t seed = 1;

  /// True when any probability is non-zero (i.e. the plan injects anything).
  [[nodiscard]] bool any() const noexcept;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) noexcept;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Whether this client sits out the whole federation (seed-derived).
  [[nodiscard]] bool never_connects(int client_id) const noexcept;

  /// The fault to inject for (client, round). Pure function of the plan.
  [[nodiscard]] FaultKind decide(int client_id, std::size_t round) const noexcept;

  /// Deterministic bit index in [0, payload_bits) for the BitFlip fault.
  [[nodiscard]] std::size_t corrupt_bit(int client_id, std::size_t round,
                                        std::size_t payload_bits) const noexcept;

  /// Record that a fault was actually applied (clients call this as they
  /// inject; counters are atomic because clients run on their own threads).
  void record(FaultKind kind) noexcept;
  [[nodiscard]] std::size_t injected(FaultKind kind) const noexcept;
  [[nodiscard]] std::size_t total_injected() const noexcept;

 private:
  /// Independent generator for a (stream, step) pair derived from the seed.
  [[nodiscard]] util::Rng stream(std::uint64_t tag, std::uint64_t a,
                                 std::uint64_t b) const noexcept;

  FaultPlan plan_;  // immutable after construction; decide() is pure
  // Deliberately lock-free (layer 4 of the static-analysis gate audits every
  // lock): clients bump these from their own threads, relaxed order is enough
  // because tests only read them after the federation has joined.
  std::array<std::atomic<std::size_t>, kFaultKindCount> counts_{};
};

}  // namespace fedguard::net
