#include "net/telemetry_relay.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace fedguard::net {

TelemetryFrame build_telemetry_report(
    obs::TraceSession& session, std::uint32_t sender_pid,
    std::uint32_t sender_id, std::uint64_t round, std::uint64_t trace_id,
    std::vector<std::pair<std::string, std::uint64_t>> counter_deltas) {
  TelemetryFrame report;
  report.sender_pid = sender_pid;
  report.sender_id = sender_id;
  report.round = round;
  report.trace_id = trace_id;
  report.counter_deltas = std::move(counter_deltas);

  std::vector<obs::TraceEventRecord> events = session.take_events();
  if (!events.empty()) {
    std::uint64_t epoch = events.front().ts_ns;
    for (const obs::TraceEventRecord& event : events) {
      epoch = std::min(epoch, event.ts_ns);
    }
    report.events.reserve(events.size());
    for (obs::TraceEventRecord& event : events) {
      TelemetrySpanEvent wire;
      wire.name = std::move(event.name);
      wire.category = std::move(event.category);
      wire.rel_ts_ns = event.ts_ns - epoch;
      wire.trace_id = event.trace_id;
      wire.round = event.round;
      wire.tid = event.tid;
      wire.phase = event.phase;
      report.events.push_back(std::move(wire));
    }
  }
  return report;
}

std::vector<obs::TraceEventRecord> rebase_telemetry_events(
    const TelemetryFrame& report, std::uint64_t arrival_ns) {
  std::uint64_t max_rel = 0;
  for (const TelemetrySpanEvent& event : report.events) {
    max_rel = std::max(max_rel, event.rel_ts_ns);
  }
  // Anchor so the reporter's window ends at arrival; saturate rather than
  // wrap if the receiver's clock reads less than the window width.
  const std::uint64_t base = arrival_ns > max_rel ? arrival_ns - max_rel : 0;
  std::vector<obs::TraceEventRecord> records;
  records.reserve(report.events.size());
  for (const TelemetrySpanEvent& event : report.events) {
    obs::TraceEventRecord record;
    record.name = event.name;
    record.category = event.category;
    record.ts_ns = base + event.rel_ts_ns;
    record.trace_id = event.trace_id;
    record.round = event.round;
    record.pid = static_cast<int>(report.sender_pid);
    record.tid = event.tid;
    record.phase = event.phase;
    records.push_back(std::move(record));
  }
  return records;
}

std::string with_origin_label(const std::string& name, std::uint32_t sender_id) {
  const std::string label = "origin=\"c" + std::to_string(sender_id) + "\"";
  if (!name.empty() && name.back() == '}') {
    return name.substr(0, name.size() - 1) + "," + label + "}";
  }
  return name + "{" + label + "}";
}

std::size_t ingest_telemetry_report(const TelemetryFrame& report,
                                    std::uint64_t arrival_ns) {
  const std::vector<obs::TraceEventRecord> records =
      rebase_telemetry_events(report, arrival_ns);
  const bool ingested =
      !records.empty() && obs::ingest_into_active_session(records);
  auto& registry = obs::Registry::global();
  for (const auto& [name, delta] : report.counter_deltas) {
    registry.counter(with_origin_label(name, report.sender_id)).add(delta);
  }
  return ingested ? records.size() : 0;
}

}  // namespace fedguard::net
