#include "net/message.hpp"

#include <array>

#include "obs/trace.hpp"
#include "util/serialize.hpp"

namespace fedguard::net {

const char* to_string(DecodeErrorCode code) noexcept {
  switch (code) {
    case DecodeErrorCode::BadMagic: return "bad_magic";
    case DecodeErrorCode::BadType: return "bad_type";
    case DecodeErrorCode::Oversized: return "oversized";
    case DecodeErrorCode::BadCrc: return "bad_crc";
    case DecodeErrorCode::Truncated: return "truncated";
    case DecodeErrorCode::BadShape: return "bad_shape";
    case DecodeErrorCode::BadCodec: return "bad_codec";
  }
  return "unknown";
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t value = i;
    for (int bit = 0; bit < 8; ++bit) {
      value = (value >> 1) ^ ((value & 1u) ? 0xedb88320u : 0u);
    }
    table[i] = value;
  }
  return table;
}

util::WireCodec read_codec_tag(util::ByteReader& reader) {
  const std::uint32_t tag = reader.read_u32();
  if (tag > static_cast<std::uint32_t>(util::WireCodec::Fp16)) {
    throw DecodeError{DecodeErrorCode::BadCodec,
                      "unknown psi codec tag " + std::to_string(tag)};
  }
  return static_cast<util::WireCodec>(tag);
}

void write_psi_span(util::ByteWriter& writer, util::WireCodec codec,
                    std::span<const float> psi, std::size_t chunk) {
  switch (codec) {
    case util::WireCodec::Q8: writer.write_q8_span(psi, chunk); return;
    case util::WireCodec::Fp16: writer.write_f16_span(psi); return;
    case util::WireCodec::Fp32: break;
  }
  writer.write_f32_span(psi);
}

// All three codecs share the leading u64 element count (already consumed by
// the caller for shape validation); this reads the codec-specific remainder.
void read_psi_span(util::ByteReader& reader, util::WireCodec codec, std::span<float> out) {
  switch (codec) {
    case util::WireCodec::Q8: reader.read_q8_into(out); return;
    case util::WireCodec::Fp16: reader.read_f16_into(out); return;
    case util::WireCodec::Fp32: break;
  }
  reader.read_f32_into(out);
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xffffffffu;
  for (const std::byte b : data) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<std::uint32_t>(b)) & 0xffu];
  }
  return crc ^ 0xffffffffu;
}

FrameHeader decode_frame_header(std::span<const std::byte> header) {
  if (header.size() < kFrameHeaderBytes) {
    throw DecodeError{DecodeErrorCode::Truncated,
                      "frame header: " + std::to_string(header.size()) + " of " +
                          std::to_string(kFrameHeaderBytes) + " bytes"};
  }
  util::ByteReader reader{header};
  if (reader.read_u32() != kFrameMagic) {
    throw DecodeError{DecodeErrorCode::BadMagic, "frame: bad magic"};
  }
  const std::uint32_t type = reader.read_u32();
  if (type < static_cast<std::uint32_t>(MessageType::Hello) ||
      type > static_cast<std::uint32_t>(MessageType::TelemetryReport)) {
    throw DecodeError{DecodeErrorCode::BadType,
                      "frame: unknown message type " + std::to_string(type)};
  }
  FrameHeader parsed;
  parsed.type = static_cast<MessageType>(type);
  parsed.payload_bytes = static_cast<std::size_t>(reader.read_u64());
  if (parsed.payload_bytes > kMaxPayloadBytes) {
    throw DecodeError{DecodeErrorCode::Oversized,
                      "frame: payload length " + std::to_string(parsed.payload_bytes) +
                          " exceeds " + std::to_string(kMaxPayloadBytes)};
  }
  parsed.payload_crc = reader.read_u32();
  return parsed;
}

void verify_payload_crc(const FrameHeader& header, std::span<const std::byte> payload) {
  const std::uint32_t actual = crc32(payload);
  if (actual != header.payload_crc) {
    throw DecodeError{DecodeErrorCode::BadCrc, "frame: payload CRC mismatch"};
  }
}

Message decode_frame(std::span<const std::byte> buffer) {
  const FrameHeader header = decode_frame_header(buffer);
  if (buffer.size() < kFrameHeaderBytes + header.payload_bytes) {
    throw DecodeError{DecodeErrorCode::Truncated,
                      "frame: " + std::to_string(buffer.size() - kFrameHeaderBytes) +
                          " of " + std::to_string(header.payload_bytes) +
                          " payload bytes"};
  }
  const std::span<const std::byte> payload =
      buffer.subspan(kFrameHeaderBytes, header.payload_bytes);
  verify_payload_crc(header, payload);
  return Message{header.type, {payload.begin(), payload.end()}};
}

std::vector<std::byte> encode_frame(const Message& message) {
  util::ByteWriter writer;
  writer.write_u32(kFrameMagic);
  writer.write_u32(static_cast<std::uint32_t>(message.type));
  writer.write_u64(message.payload.size());
  writer.write_u32(crc32(message.payload));
  std::vector<std::byte> out = writer.bytes();
  out.insert(out.end(), message.payload.begin(), message.payload.end());
  return out;
}

std::vector<std::byte> encode_hello(int client_id) {
  util::ByteWriter writer;
  writer.write_u32(static_cast<std::uint32_t>(client_id));
  return writer.bytes();
}

int decode_hello(std::span<const std::byte> payload) {
  try {
    util::ByteReader reader{payload};
    return static_cast<int>(reader.read_u32());
  } catch (const std::out_of_range&) {
    throw DecodeError{DecodeErrorCode::Truncated, "decode_hello: truncated payload"};
  }
}

std::vector<std::byte> encode_round_request(const RoundRequest& request) {
  FEDGUARD_TRACE_SPAN("serialize", "encode_round_request");
  util::ByteWriter writer;
  writer.write_u64(request.round);
  writer.write_u32(request.want_decoder ? 1 : 0);
  writer.write_u32(static_cast<std::uint32_t>(request.psi_codec));
  writer.write_u32(static_cast<std::uint32_t>(request.psi_chunk));
  writer.write_u64(request.trace_id);
  writer.write_u64(request.parent_span);
  writer.write_f32_span(request.global_parameters);
  return writer.bytes();
}

RoundRequest decode_round_request(std::span<const std::byte> payload) {
  FEDGUARD_TRACE_SPAN("serialize", "decode_round_request");
  util::ByteReader reader{payload};
  RoundRequest request;
  try {
    request.round = static_cast<std::size_t>(reader.read_u64());
    request.want_decoder = reader.read_u32() != 0;
    request.psi_codec = read_codec_tag(reader);
    request.psi_chunk = static_cast<std::size_t>(reader.read_u32());
    request.trace_id = reader.read_u64();
    request.parent_span = reader.read_u64();
    const auto count = static_cast<std::size_t>(reader.read_u64());
    request.global_parameters = reader.read_f32_vector(count);
  } catch (const std::out_of_range&) {
    throw DecodeError{DecodeErrorCode::Truncated,
                      "decode_round_request: truncated payload"};
  }
  return request;
}

std::vector<std::byte> encode_round_reply(const RoundReply& reply) {
  FEDGUARD_TRACE_SPAN("serialize", "encode_round_reply");
  util::ByteWriter writer;
  writer.write_u64(reply.round);
  writer.write_u64(reply.trace_id);
  writer.write_u32(static_cast<std::uint32_t>(reply.update.client_id));
  writer.write_u64(reply.update.num_samples);
  writer.write_u32(reply.update.truly_malicious ? 1 : 0);
  writer.write_u32(static_cast<std::uint32_t>(reply.psi_codec));
  write_psi_span(writer, reply.psi_codec, reply.update.psi, reply.psi_chunk);
  writer.write_f32_span(reply.update.theta);
  return writer.bytes();
}

RoundReply decode_round_reply(std::span<const std::byte> payload) {
  util::ByteReader reader{payload};
  RoundReply reply;
  try {
    reply.round = static_cast<std::size_t>(reader.read_u64());
    reply.trace_id = reader.read_u64();
    reply.update.client_id = static_cast<int>(reader.read_u32());
    reply.update.num_samples = static_cast<std::size_t>(reader.read_u64());
    reply.update.truly_malicious = reader.read_u32() != 0;
    reply.psi_codec = read_codec_tag(reader);
    const auto psi_count = static_cast<std::size_t>(reader.read_u64());
    reply.update.psi.resize(psi_count);
    read_psi_span(reader, reply.psi_codec, reply.update.psi);
    const auto theta_count = static_cast<std::size_t>(reader.read_u64());
    reply.update.theta = reader.read_f32_vector(theta_count);
  } catch (const std::out_of_range&) {
    throw DecodeError{DecodeErrorCode::Truncated,
                      "decode_round_reply: truncated payload"};
  }
  return reply;
}

std::size_t decode_round_reply_into(std::span<const std::byte> payload,
                                    defenses::UpdateRow row) {
  FEDGUARD_TRACE_SPAN("serialize", "decode_round_reply");
  util::ByteReader reader{payload};
  try {
    const auto round = static_cast<std::size_t>(reader.read_u64());
    static_cast<void>(reader.read_u64());  // trace_id echo: not needed here
    row.meta->client_id = static_cast<int>(reader.read_u32());
    row.meta->num_samples = static_cast<std::size_t>(reader.read_u64());
    row.meta->truly_malicious = reader.read_u32() != 0;
    const util::WireCodec psi_codec = read_codec_tag(reader);
    const auto psi_count = static_cast<std::size_t>(reader.read_u64());
    if (psi_count != row.psi.size()) {
      throw DecodeError{DecodeErrorCode::BadShape,
                        "decode_round_reply_into: psi count " + std::to_string(psi_count) +
                            " != expected " + std::to_string(row.psi.size())};
    }
    read_psi_span(reader, psi_codec, row.psi);
    const auto theta_count = static_cast<std::size_t>(reader.read_u64());
    row.meta->theta_count = theta_count;
    if (theta_count > row.theta.size()) {
      throw DecodeError{DecodeErrorCode::BadShape,
                        "decode_round_reply_into: theta count " + std::to_string(theta_count) +
                            " exceeds capacity " + std::to_string(row.theta.size())};
    }
    reader.read_f32_into(row.theta.subspan(0, theta_count));
    return round;
  } catch (const std::out_of_range&) {
    throw DecodeError{DecodeErrorCode::Truncated,
                      "decode_round_reply_into: truncated payload"};
  }
}

std::vector<std::byte> encode_telemetry_report(const TelemetryFrame& report) {
  FEDGUARD_TRACE_SPAN("serialize", "encode_telemetry_report");
  util::ByteWriter writer;
  writer.write_u32(report.sender_pid);
  writer.write_u32(report.sender_id);
  writer.write_u64(report.round);
  writer.write_u64(report.trace_id);
  writer.write_u64(report.events.size());
  for (const TelemetrySpanEvent& event : report.events) {
    writer.write_u64(event.rel_ts_ns);
    writer.write_u64(event.trace_id);
    writer.write_u64(event.round);
    writer.write_u32(static_cast<std::uint32_t>(event.tid));
    writer.write_u32(static_cast<std::uint32_t>(event.phase));
    writer.write_string(event.name);
    writer.write_string(event.category);
  }
  writer.write_u64(report.counter_deltas.size());
  for (const auto& [name, delta] : report.counter_deltas) {
    writer.write_string(name);
    writer.write_u64(delta);
  }
  return writer.bytes();
}

TelemetryFrame decode_telemetry_report(std::span<const std::byte> payload) {
  FEDGUARD_TRACE_SPAN("serialize", "decode_telemetry_report");
  util::ByteReader reader{payload};
  TelemetryFrame report;
  try {
    report.sender_pid = reader.read_u32();
    report.sender_id = reader.read_u32();
    report.round = reader.read_u64();
    report.trace_id = reader.read_u64();
    const auto event_count = static_cast<std::size_t>(reader.read_u64());
    // A declared count must at least fit in the payload (each event is ≥ 44
    // bytes on the wire) — rejects allocation bombs before the reserve.
    if (event_count > payload.size()) {
      throw DecodeError{DecodeErrorCode::Truncated,
                        "decode_telemetry_report: event count exceeds payload"};
    }
    report.events.reserve(event_count);
    for (std::size_t i = 0; i < event_count; ++i) {
      TelemetrySpanEvent event;
      event.rel_ts_ns = reader.read_u64();
      event.trace_id = reader.read_u64();
      event.round = reader.read_u64();
      event.tid = static_cast<std::int32_t>(reader.read_u32());
      event.phase = static_cast<char>(reader.read_u32());
      event.name = reader.read_string();
      event.category = reader.read_string();
      report.events.push_back(std::move(event));
    }
    const auto delta_count = static_cast<std::size_t>(reader.read_u64());
    if (delta_count > payload.size()) {
      throw DecodeError{DecodeErrorCode::Truncated,
                        "decode_telemetry_report: delta count exceeds payload"};
    }
    report.counter_deltas.reserve(delta_count);
    for (std::size_t i = 0; i < delta_count; ++i) {
      std::string name = reader.read_string();
      const std::uint64_t delta = reader.read_u64();
      report.counter_deltas.emplace_back(std::move(name), delta);
    }
  } catch (const std::out_of_range&) {
    throw DecodeError{DecodeErrorCode::Truncated,
                      "decode_telemetry_report: truncated payload"};
  }
  return report;
}

std::size_t client_update_frame_bytes(std::size_t psi_count, std::size_t theta_count) {
  return client_update_frame_bytes(psi_count, theta_count, util::WireCodec::Fp32,
                                   util::kDefaultQ8ChunkSize);
}

std::size_t client_update_frame_bytes(std::size_t psi_count, std::size_t theta_count,
                                      util::WireCodec psi_codec, std::size_t psi_chunk) {
  return kFrameHeaderBytes + sizeof(std::uint64_t) /*round*/ +
         sizeof(std::uint64_t) /*trace_id*/ +
         sizeof(std::uint32_t) /*id*/ + sizeof(std::uint64_t) /*n*/ +
         sizeof(std::uint32_t) /*malicious*/ + sizeof(std::uint32_t) /*psi codec tag*/ +
         util::codec_span_wire_size(psi_codec, psi_count, psi_chunk) +
         util::f32_vector_wire_size(theta_count);
}

}  // namespace fedguard::net
