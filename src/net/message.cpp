#include "net/message.hpp"

#include <stdexcept>

#include "util/serialize.hpp"

namespace fedguard::net {

std::vector<std::byte> encode_frame(const Message& message) {
  util::ByteWriter writer;
  writer.write_u32(kFrameMagic);
  writer.write_u32(static_cast<std::uint32_t>(message.type));
  writer.write_u64(message.payload.size());
  std::vector<std::byte> out = writer.bytes();
  out.insert(out.end(), message.payload.begin(), message.payload.end());
  return out;
}

std::vector<std::byte> encode_hello(int client_id) {
  util::ByteWriter writer;
  writer.write_u32(static_cast<std::uint32_t>(client_id));
  return writer.bytes();
}

int decode_hello(std::span<const std::byte> payload) {
  util::ByteReader reader{payload};
  return static_cast<int>(reader.read_u32());
}

std::vector<std::byte> encode_round_request(const RoundRequest& request) {
  util::ByteWriter writer;
  writer.write_u64(request.round);
  writer.write_u32(request.want_decoder ? 1 : 0);
  writer.write_f32_span(request.global_parameters);
  return writer.bytes();
}

RoundRequest decode_round_request(std::span<const std::byte> payload) {
  util::ByteReader reader{payload};
  RoundRequest request;
  try {
    request.round = static_cast<std::size_t>(reader.read_u64());
    request.want_decoder = reader.read_u32() != 0;
    const auto count = static_cast<std::size_t>(reader.read_u64());
    request.global_parameters = reader.read_f32_vector(count);
  } catch (const std::out_of_range&) {
    throw std::runtime_error{"decode_round_request: truncated payload"};
  }
  return request;
}

std::vector<std::byte> encode_client_update(const defenses::ClientUpdate& update) {
  util::ByteWriter writer;
  writer.write_u32(static_cast<std::uint32_t>(update.client_id));
  writer.write_u64(update.num_samples);
  writer.write_u32(update.truly_malicious ? 1 : 0);
  writer.write_f32_span(update.psi);
  writer.write_f32_span(update.theta);
  return writer.bytes();
}

defenses::ClientUpdate decode_client_update(std::span<const std::byte> payload) {
  util::ByteReader reader{payload};
  defenses::ClientUpdate update;
  try {
    update.client_id = static_cast<int>(reader.read_u32());
    update.num_samples = static_cast<std::size_t>(reader.read_u64());
    update.truly_malicious = reader.read_u32() != 0;
    const auto psi_count = static_cast<std::size_t>(reader.read_u64());
    update.psi = reader.read_f32_vector(psi_count);
    const auto theta_count = static_cast<std::size_t>(reader.read_u64());
    update.theta = reader.read_f32_vector(theta_count);
  } catch (const std::out_of_range&) {
    throw std::runtime_error{"decode_client_update: truncated payload"};
  }
  return update;
}

std::size_t client_update_frame_bytes(std::size_t psi_count, std::size_t theta_count) {
  return kFrameHeaderBytes + sizeof(std::uint32_t) /*id*/ + sizeof(std::uint64_t) /*n*/ +
         sizeof(std::uint32_t) /*malicious*/ + util::f32_vector_wire_size(psi_count) +
         util::f32_vector_wire_size(theta_count);
}

}  // namespace fedguard::net
