#pragma once
// Standalone live-scrape server: one TcpListener + Reactor + thread serving
// the obs::HttpResponder endpoints (/metrics, /metrics.json, /healthz) on a
// dedicated port. This is the exposition path for processes that do NOT
// already run a reactor — the in-process fl::Server simulation and the
// HierarchicalServer root — while shard tiers instead host scrapes as
// auto-detected connections on their existing data-port reactor
// (Reactor::set_http_responder / listen_also).
//
// The serving thread only ever touches the registry expositions (thread-safe
// by the Registry contract), so starting one alongside a running federation
// is free of coordination: construct it after the exporter exists, destroy
// it before teardown. All scrape traffic is HTTP/1.0 one-shot exchanges;
// a peer that speaks FGNM frames at this port is dropped on decode.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "net/reactor.hpp"
#include "net/socket.hpp"
#include "obs/http_exposition.hpp"

namespace fedguard::net {

class TelemetryHttpServer {
 public:
  /// Bind `port` (0 = ephemeral, see port()) and start the serving thread.
  /// Throws std::runtime_error when the port cannot be bound.
  TelemetryHttpServer(std::uint16_t port, obs::HttpResponder responder);
  /// Stops the serving thread and closes the listener.
  ~TelemetryHttpServer();

  TelemetryHttpServer(const TelemetryHttpServer&) = delete;
  TelemetryHttpServer& operator=(const TelemetryHttpServer&) = delete;

  /// The actually bound port.
  [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }

 private:
  void serve();

  TcpListener listener_;
  Reactor reactor_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// The default responder most hosts want: global-registry expositions plus a
/// healthz derived from the given progress counters (either may be "" to
/// omit that healthz field).
[[nodiscard]] obs::HttpResponder make_registry_responder(
    const std::string& rounds_counter, const std::string& degraded_counter);

}  // namespace fedguard::net
