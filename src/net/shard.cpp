#include "net/shard.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "net/telemetry_relay.hpp"
#include "obs/exporter.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace fedguard::net {

using Clock = std::chrono::steady_clock;
using std::chrono::milliseconds;

// ---- ShardAggregator ---------------------------------------------------------

ShardAggregator::ShardAggregator(ShardConfig config,
                                 std::unique_ptr<defenses::AggregationStrategy> strategy)
    : config_{config},
      strategy_{std::move(strategy)},
      listener_{0, config.listen_backlog},
      reactor_{Reactor::Callbacks{
          // on_accept: nothing until the peer introduces itself with Hello.
          nullptr,
          [this](Reactor::ConnectionId id, Message&& message) {
            handle_message(id, std::move(message));
          },
          [this](Reactor::ConnectionId id) {
            const auto it = connection_clients_.find(id);
            if (it != connection_clients_.end()) {
              client_connections_.erase(it->second);
              connection_clients_.erase(it);
              util::MutexLock lock{mutex_};
              registered_ = client_connections_.size();
            }
            // A cohort member that dies mid-round can no longer answer; its
            // slot simply stays unfilled and the round completes without it.
            pending_slots_.erase(id);
          },
          [this](Reactor::ConnectionId, const DecodeError& error) {
            corrupt_frames_total_.add(1);
            // BadCrc leaves the byte stream in sync (reactor enforces that
            // only BadCrc/BadShape keeps are honoured); everything else
            // means desync and the reactor drops the link regardless.
            return error.code() == DecodeErrorCode::BadCrc;
          }}} {
  if (!strategy_) {
    throw std::invalid_argument{"ShardAggregator: null strategy"};
  }
  const std::string label = "{shard=\"" + std::to_string(config_.shard_id) + "\"}";
  auto& registry = obs::Registry::global();
  replies_total_ = registry.counter("net_shard_replies_total" + label);
  corrupt_frames_total_ = registry.counter("net_shard_corrupt_frames_total" + label);
  rounds_total_ = registry.counter("net_shard_rounds_total" + label);
  timeouts_total_ = registry.counter("net_shard_timeouts_total" + label);
  telemetry_reports_total_ = registry.counter("net_shard_telemetry_reports_total" + label);
  telemetry_events_total_ = registry.counter("net_shard_telemetry_events_total" + label);
  arena_capacity_bytes_ = registry.gauge("obs_arena_capacity_bytes" + label);
  // Live exposition: the data port always answers HTTP scrapes (the reactor
  // auto-detects them) and an optional dedicated port serves the same
  // endpoints for scrapers that must not touch the data port.
  reactor_.set_http_responder(make_registry_responder(
      "net_shard_rounds_total" + label, "net_shard_timeouts_total" + label));
  if (config_.http_port != 0) {
    http_listener_ = std::make_unique<TcpListener>(config_.http_port);
  }
  thread_ = std::thread{[this] { thread_main(); }};
}

ShardAggregator::~ShardAggregator() { kill(); }

std::size_t ShardAggregator::registered_clients() const {
  util::MutexLock lock{mutex_};
  return registered_;
}

bool ShardAggregator::alive() const {
  util::MutexLock lock{mutex_};
  return running_;
}

void ShardAggregator::start_round(RoundCommand command) {
  {
    util::MutexLock lock{mutex_};
    if (!running_) return;  // dead shard: the root's wait_partial will time out
    command_ = Command::Round;
    pending_round_ = std::move(command);
    published_ = false;
  }
  reactor_.wake();
}

bool ShardAggregator::wait_partial(Clock::time_point deadline, std::size_t round,
                                   defenses::ShardPartial& out) {
  util::MutexLock lock{mutex_};
  while (!(published_ && published_round_ == round)) {
    if (!running_) return false;
    const auto now = Clock::now();
    if (now >= deadline) return false;
    const auto remaining =
        std::chrono::duration_cast<milliseconds>(deadline - now) + milliseconds{1};
    (void)cv_.wait_for(mutex_, remaining);
  }
  out = std::move(published_partial_);
  published_partial_.clear();
  published_ = false;
  return true;
}

void ShardAggregator::shutdown() {
  {
    util::MutexLock lock{mutex_};
    if (running_) command_ = Command::Shutdown;
  }
  reactor_.wake();
  if (thread_.joinable()) thread_.join();
}

void ShardAggregator::kill() {
  {
    util::MutexLock lock{mutex_};
    if (running_) command_ = Command::Kill;
  }
  reactor_.wake();
  if (thread_.joinable()) thread_.join();
}

void ShardAggregator::thread_main() {
  reactor_.listen(listener_);
  if (http_listener_) reactor_.listen_also(*http_listener_);
  for (;;) {
    reactor_.poll_once(config_.poll_timeout);
    RoundCommand round_command;
    switch (take_command(round_command)) {
      case Command::Round:
        begin_round(std::move(round_command));
        break;
      case Command::Shutdown:
        stop(/*graceful=*/true);
        return;
      case Command::Kill:
        stop(/*graceful=*/false);
        return;
      case Command::None:
        break;
    }
    if (in_round_) {
      finish_round_if_done();
    } else if (config_.idle_timeout.count() > 0) {
      reactor_.sweep_idle(config_.idle_timeout);
    }
  }
}

ShardAggregator::Command ShardAggregator::take_command(RoundCommand& round_command) {
  util::MutexLock lock{mutex_};
  const Command command = command_;
  if (command == Command::Round) round_command = std::move(pending_round_);
  command_ = Command::None;
  return command;
}

void ShardAggregator::begin_round(RoundCommand command) {
  FEDGUARD_TRACE_SPAN("net.shard", "begin:" + std::to_string(command.round));
  round_command_ = std::move(command);
  const std::size_t cohort_size = round_command_.cohort.size();
  const std::size_t psi_dim = round_command_.global_parameters->size();
  arena_.reset(cohort_size, psi_dim, round_command_.theta_dim);
  arena_capacity_bytes_.set(static_cast<std::int64_t>(arena_.capacity_bytes()));
  slot_filled_.assign(cohort_size, false);
  pending_slots_.clear();
  slots_missing_ = 0;
  next_fold_ = 0;
  exact_ = strategy_->supports_exact_merge();
  building_.clear();
  building_.shard_id = config_.shard_id;
  building_.exact = exact_;
  in_round_ = true;
  round_deadline_ = Clock::now() + config_.round_timeout;

  Message request;
  request.type = MessageType::RoundRequest;
  request.payload = *round_command_.request_payload;
  for (std::size_t slot = 0; slot < cohort_size; ++slot) {
    const int client_id = round_command_.cohort[slot];
    const auto it = client_connections_.find(client_id);
    if (it == client_connections_.end() || !reactor_.send(it->second, request)) {
      ++slots_missing_;  // never joined, or already gone: slot cannot fill
      continue;
    }
    pending_slots_[it->second] = slot;
  }
  finish_round_if_done();  // an entirely-absent cohort publishes immediately
}

void ShardAggregator::handle_message(Reactor::ConnectionId connection, Message&& message) {
  switch (message.type) {
    case MessageType::Hello: {
      int client_id = -1;
      try {
        client_id = decode_hello(message.payload);
      } catch (const DecodeError&) {
        corrupt_frames_total_.add(1);
        reactor_.close_connection(connection);
        return;
      }
      const auto it = client_connections_.find(client_id);
      if (it != client_connections_.end() && it->second != connection) {
        // Rejoin: the newest link for an id wins (mirrors RemoteServer's
        // readmission); closing the stale one fires on_close, which erases
        // the old map entries before we insert the new ones.
        reactor_.close_connection(it->second);
      }
      client_connections_[client_id] = connection;
      connection_clients_[connection] = client_id;
      {
        util::MutexLock lock{mutex_};
        registered_ = client_connections_.size();
      }
      return;
    }
    case MessageType::RoundReply:
      handle_reply(connection, message);
      return;
    case MessageType::TelemetryReport:
      handle_telemetry(message);
      return;
    default:
      // RoundRequest/Shutdown are server->client only; a peer sending them
      // upstream is confused but harmless. Ignore.
      return;
  }
}

void ShardAggregator::handle_reply(Reactor::ConnectionId connection, const Message& message) {
  if (!in_round_) return;  // a straggler answering a round we already published
  const auto pending = pending_slots_.find(connection);
  if (pending == pending_slots_.end()) return;  // not sampled, or already answered
  const std::size_t slot = pending->second;
  std::size_t reply_round = 0;
  try {
    reply_round = decode_round_reply_into(message.payload, arena_.row(slot));
  } catch (const DecodeError&) {
    // Frame CRC passed but the shape is wrong for the round arena: count it
    // and keep both the link and the pending slot (a correct reply may follow).
    corrupt_frames_total_.add(1);
    return;
  }
  if (reply_round != round_command_.round) return;  // stale answer, keep waiting
  pending_slots_.erase(pending);
  slot_filled_[slot] = true;
  replies_total_.add(1);
  if (exact_) fold_ready_rows();
}

void ShardAggregator::handle_telemetry(const Message& message) {
  // Observational-only by contract: decode failures count as corrupt traffic
  // but never touch round state or the link (the frame CRC already passed).
  TelemetryFrame report;
  try {
    report = decode_telemetry_report(message.payload);
  } catch (const DecodeError&) {
    corrupt_frames_total_.add(1);
    return;
  }
  telemetry_reports_total_.add(1);
  telemetry_events_total_.add(ingest_telemetry_report(report, obs::now_ns()));
}

void ShardAggregator::fold_ready_rows() {
  // Dynamic batching: fold the contiguous filled prefix the moment it grows.
  // Total fold order is ascending slot order (publish_partial folds the
  // gapped remainder the same way), which is exactly the batch fold order —
  // the bit-identity contract of fold_exact_update.
  while (next_fold_ < slot_filled_.size() && slot_filled_[next_fold_]) {
    defenses::fold_exact_update(building_, arena_.psi(next_fold_), arena_.meta(next_fold_));
    ++next_fold_;
  }
}

void ShardAggregator::finish_round_if_done() {
  if (!in_round_) return;
  if (!pending_slots_.empty() && Clock::now() < round_deadline_) return;
  if (!pending_slots_.empty()) {
    timeouts_total_.add(pending_slots_.size());
    pending_slots_.clear();
  }
  publish_partial();
}

void ShardAggregator::publish_partial() {
  FEDGUARD_TRACE_SPAN("net.shard", "publish:" + std::to_string(round_command_.round));
  filled_slots_.clear();
  for (std::size_t slot = 0; slot < slot_filled_.size(); ++slot) {
    if (slot_filled_[slot]) filled_slots_.push_back(slot);
  }
  if (exact_) {
    // Fold the slots past the first gap (ascending, same total order as the
    // batch fold). building_ already holds the contiguous prefix.
    for (const std::size_t slot : filled_slots_) {
      if (slot < next_fold_) continue;
      defenses::fold_exact_update(building_, arena_.psi(slot), arena_.meta(slot));
    }
  } else if (!filled_slots_.empty()) {
    const defenses::UpdateView view{arena_, filled_slots_};
    defenses::AggregationContext context;
    context.round = round_command_.round;
    context.global_parameters = *round_command_.global_parameters;
    strategy_->partial_aggregate_into(context, view, config_.shard_id, building_);
  }
  // (0 replies: building_ stays cleared with client_count == 0 — the root
  // skips it when merging.)
  in_round_ = false;
  rounds_total_.add(1);
  {
    util::MutexLock lock{mutex_};
    published_partial_ = std::move(building_);
    published_ = true;
    published_round_ = round_command_.round;
  }
  cv_.notify_all();
  building_.clear();
}

void ShardAggregator::stop(bool graceful) {
  scratch_connection_ids_.clear();
  for (const auto& [client_id, connection] : client_connections_) {
    (void)client_id;
    scratch_connection_ids_.push_back(connection);
  }
  if (graceful) {
    const Message bye{MessageType::Shutdown, {}};
    for (const Reactor::ConnectionId connection : scratch_connection_ids_) {
      (void)reactor_.send(connection, bye);
    }
    // Drain the farewell frames (bounded: peers may already be gone).
    const auto flush_deadline = Clock::now() + milliseconds{1000};
    while (reactor_.pending_write_bytes() > 0 && Clock::now() < flush_deadline) {
      reactor_.poll_once(milliseconds{10});
    }
  }
  for (const Reactor::ConnectionId connection : scratch_connection_ids_) {
    reactor_.close_connection(connection);
  }
  reactor_.stop_listening();
  listener_.close();  // late joiners now get ECONNREFUSED instead of queueing
  if (http_listener_) http_listener_->close();
  {
    util::MutexLock lock{mutex_};
    running_ = false;
  }
  cv_.notify_all();
}

// ---- HierarchicalServer ------------------------------------------------------

HierarchicalServer::HierarchicalServer(
    HierarchicalServerConfig config,
    const std::function<std::unique_ptr<defenses::AggregationStrategy>()>& strategy_factory,
    const data::Dataset& test_set, models::ClassifierArch arch,
    models::ImageGeometry geometry)
    : config_{config},
      test_set_{test_set},
      geometry_{geometry},
      eval_classifier_{std::make_unique<models::Classifier>(arch, geometry, config.seed)},
      rng_{config.seed} {
  if (config_.shards == 0) {
    throw std::invalid_argument{"HierarchicalServer: shards must be > 0"};
  }
  if (config_.expected_clients < config_.shards) {
    throw std::invalid_argument{
        "HierarchicalServer: expected_clients must be >= shards "
        "(every shard owns at least one client)"};
  }
  if (config_.clients_per_round == 0 ||
      config_.clients_per_round > config_.expected_clients) {
    throw std::invalid_argument{"HierarchicalServer: clients_per_round out of range"};
  }
  merge_strategy_ = strategy_factory();
  if (!merge_strategy_) {
    throw std::invalid_argument{"HierarchicalServer: strategy_factory returned null"};
  }
  shards_.reserve(config_.shards);
  for (std::size_t shard = 0; shard < config_.shards; ++shard) {
    ShardConfig shard_config;
    shard_config.shard_id = shard;
    shard_config.poll_timeout =
        milliseconds{static_cast<std::int64_t>(config_.reactor_poll_timeout_ms)};
    shard_config.round_timeout =
        milliseconds{static_cast<std::int64_t>(config_.round_timeout_ms)};
    shard_config.idle_timeout =
        milliseconds{static_cast<std::int64_t>(config_.reactor_idle_timeout_ms)};
    shard_config.psi_codec = config_.psi_codec;
    shard_config.psi_chunk = config_.psi_chunk;
    if (config_.http_port != 0) {
      shard_config.http_port =
          static_cast<std::uint16_t>(config_.http_port + 1 + shard);
    }
    shards_.push_back(std::make_unique<ShardAggregator>(shard_config, strategy_factory()));
  }
  if (config_.http_port != 0) {
    http_server_ = std::make_unique<TelemetryHttpServer>(
        config_.http_port,
        make_registry_responder("net_root_rounds_total",
                                "net_root_degraded_rounds_total"));
  }
  global_parameters_ = eval_classifier_->parameters_flat();
  auto& registry = obs::Registry::global();
  rounds_total_ = registry.counter("net_root_rounds_total");
  degraded_rounds_total_ = registry.counter("net_root_degraded_rounds_total");
  round_seconds_ = registry.histogram("net_root_round_seconds");
}

HierarchicalServer::~HierarchicalServer() {
  for (auto& shard : shards_) shard->kill();
}

std::size_t HierarchicalServer::shard_of(std::size_t client_id) const noexcept {
  return client_id * shards_.size() / config_.expected_clients;
}

std::uint16_t HierarchicalServer::shard_port(std::size_t shard) const {
  return shards_.at(shard)->port();
}

std::size_t HierarchicalServer::live_shards() const {
  std::size_t live = 0;
  for (const auto& shard : shards_) {
    if (shard->alive()) ++live;
  }
  return live;
}

void HierarchicalServer::await_clients() {
  const auto deadline = Clock::now() + milliseconds{
      static_cast<std::int64_t>(config_.accept_timeout_ms)};
  for (;;) {
    std::size_t registered = 0;
    for (const auto& shard : shards_) registered += shard->registered_clients();
    if (registered >= config_.expected_clients) return;
    if (Clock::now() >= deadline) {
      throw std::runtime_error{
          "HierarchicalServer: only " + std::to_string(registered) + " of " +
          std::to_string(config_.expected_clients) + " clients joined within " +
          std::to_string(config_.accept_timeout_ms) + " ms"};
    }
    std::this_thread::sleep_for(milliseconds{10});
  }
}

void HierarchicalServer::kill_shard(std::size_t shard) {
  util::log_warn("hierarchical server: killing shard %zu", shard);
  shards_.at(shard)->kill();
}

fl::RoundRecord HierarchicalServer::run_round(std::size_t round) {
  const std::uint64_t round_start_ns = obs::now_ns();
  // Install the round's trace context before the first span so every local
  // span — and, via RoundRequest, every remote one — carries the same id.
  const std::uint64_t trace_id = obs::make_trace_id(config_.seed, round);
  obs::set_trace_context({trace_id, 0, round});
  FEDGUARD_TRACE_SPAN("net.shard", "root-round:" + std::to_string(round));
  fl::RoundRecord record;
  record.round = round;

  if (config_.shard_kill_predicate) {
    for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
      if (shards_[shard]->alive() && config_.shard_kill_predicate(shard, round)) {
        kill_shard(shard);
      }
    }
  }

  // Sample with fl::Server's rng semantics, then split the sample into
  // per-shard cohorts by client ownership, preserving sample order within
  // each cohort (cohort slot order == sample order, the fold-order contract).
  rng_.sample_without_replacement(config_.expected_clients, config_.clients_per_round,
                                  sampled_);
  record.sampled_clients = sampled_.size();
  cohorts_.resize(shards_.size());
  for (auto& cohort : cohorts_) cohort.clear();
  for (const std::size_t client : sampled_) {
    cohorts_[shard_of(client)].push_back(static_cast<int>(client));
  }

  RoundRequest request;
  request.round = round;
  request.want_decoder = merge_strategy_->wants_decoders();
  request.psi_codec = config_.psi_codec;
  request.psi_chunk = config_.psi_chunk;
  request.trace_id = trace_id;
  request.global_parameters = global_parameters_;
  const auto payload =
      std::make_shared<const std::vector<std::byte>>(encode_round_request(request));
  const auto globals = std::make_shared<const std::vector<float>>(global_parameters_);
  const std::size_t theta_dim =
      merge_strategy_->wants_decoders() ? merge_strategy_->decoder_parameter_count() : 0;

  partials_.resize(shards_.size());
  std::vector<bool> dispatched(shards_.size(), false);
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    partials_[shard].clear();
    if (cohorts_[shard].empty() || !shards_[shard]->alive()) continue;
    ShardAggregator::RoundCommand command;
    command.round = round;
    command.cohort = cohorts_[shard];
    command.request_payload = payload;
    command.global_parameters = globals;
    command.theta_dim = theta_dim;
    shards_[shard]->start_round(std::move(command));
    dispatched[shard] = true;
  }

  // Shards publish at their own round_timeout; give them that plus slack for
  // the mailbox hop so a healthy shard never misses the root deadline.
  const auto deadline = Clock::now() +
      milliseconds{static_cast<std::int64_t>(config_.round_timeout_ms)} +
      milliseconds{static_cast<std::int64_t>(4 * config_.reactor_poll_timeout_ms) + 500};
  bool degraded = false;
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    if (!dispatched[shard]) {
      degraded = degraded || !cohorts_[shard].empty();
      continue;
    }
    if (!shards_[shard]->wait_partial(deadline, round, partials_[shard])) {
      util::log_warn("hierarchical server: shard %zu missed round %zu", shard, round);
      partials_[shard].clear();  // merges as an empty (skipped) partial
      degraded = true;
    }
  }

  std::size_t responded = 0;
  for (const auto& partial : partials_) {
    responded += partial.client_count;
    record.sampled_malicious += partial.malicious_count;
  }
  record.stragglers = sampled_.size() - responded;
  record.timeouts = record.stragglers;

  bool merged = false;
  if (responded > 0) {
    FEDGUARD_TRACE_SPAN("net.shard", "merge");
    defenses::AggregationContext context;
    context.round = round;
    context.global_parameters = global_parameters_;
    try {
      merge_strategy_->merge_partials_into(context, partials_, result_);
      merged = true;
    } catch (const std::invalid_argument& e) {
      util::log_warn("hierarchical server: round %zu merge failed (%s); "
                     "keeping previous global model",
                     round, e.what());
    }
  }
  if (merged) {
    if (result_.parameters.size() != global_parameters_.size()) {
      throw std::runtime_error{"HierarchicalServer: wrong merged dimension"};
    }
    for (std::size_t i = 0; i < global_parameters_.size(); ++i) {
      global_parameters_[i] += config_.server_learning_rate *
                               (result_.parameters[i] - global_parameters_[i]);
    }
    record.rejected_clients = result_.rejected_clients.size();
  } else {
    degraded = true;  // nothing arrived: the model carries over unchanged
  }
  if (degraded) degraded_rounds_total_.add(1);

  {
    FEDGUARD_TRACE_SPAN("net.shard", "eval");
    evaluate_round(record);
  }
  const double seconds = static_cast<double>(obs::now_ns() - round_start_ns) * 1e-9;
  record.round_seconds = seconds;
  round_seconds_.observe(seconds);
  rounds_total_.add(1);
  obs::round_tick(round);
  return record;
}

fl::RunHistory HierarchicalServer::run() {
  await_clients();
  fl::RunHistory history;
  history.strategy = merge_strategy_->name();
  history.rounds.reserve(config_.rounds);
  for (std::size_t round = 0; round < config_.rounds; ++round) {
    fl::RoundRecord record = run_round(round);
    util::log_info(
        "hierarchical round %zu/%zu: accuracy=%.4f sampled=%zu stragglers=%zu "
        "live_shards=%zu",
        round + 1, config_.rounds, record.test_accuracy, record.sampled_clients,
        record.stragglers, live_shards());
    history.rounds.push_back(std::move(record));
  }
  for (auto& shard : shards_) {
    if (shard->alive()) shard->shutdown();
  }
  return history;
}

void HierarchicalServer::evaluate_round(fl::RoundRecord& record) {
  eval_classifier_->load_parameters_flat(global_parameters_);
  std::size_t correct = 0;
  for (std::size_t start = 0; start < test_set_.size(); start += config_.eval_batch_size) {
    const std::size_t n = std::min(config_.eval_batch_size, test_set_.size() - start);
    eval_indices_.resize(n);
    for (std::size_t i = 0; i < n; ++i) eval_indices_[i] = start + i;
    const data::Dataset::Batch batch = test_set_.gather(eval_indices_);
    correct += static_cast<std::size_t>(
        eval_classifier_->evaluate_accuracy(batch.images, batch.labels) *
            static_cast<double>(n) +
        0.5);
  }
  record.test_accuracy =
      test_set_.empty() ? 0.0
                        : static_cast<double>(correct) / static_cast<double>(test_set_.size());
}

}  // namespace fedguard::net
