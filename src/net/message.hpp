#pragma once
// Wire protocol for the distributed deployment mode: the paper runs the
// server and 100 clients as separate processes over 10 Gb ethernet (§IV-E).
// Frames are length-prefixed; payloads use the util::serialize primitives.
//
// Frame layout: u32 magic "FGNM" | u32 type | u64 payload bytes | payload.
//
// Round-trip per federated round:
//   server -> client : RoundRequest { round, server_lr-applied ψ0, want_theta }
//   client -> server : RoundReply   { ClientUpdate }
//   server -> client : Shutdown     (at the end of the run)

#include <cstdint>
#include <optional>
#include <vector>

#include "defenses/aggregation.hpp"

namespace fedguard::net {

enum class MessageType : std::uint32_t {
  Hello = 1,         // client -> server: announce client id
  RoundRequest = 2,  // server -> client: global parameters for this round
  RoundReply = 3,    // client -> server: trained (possibly poisoned) update
  Shutdown = 4,      // server -> client: terminate
};

struct Message {
  MessageType type;
  std::vector<std::byte> payload;
};

/// Serialize a message into a framed byte buffer.
[[nodiscard]] std::vector<std::byte> encode_frame(const Message& message);

/// Payload encoders / decoders. Decoders throw std::runtime_error on
/// malformed payloads.
[[nodiscard]] std::vector<std::byte> encode_hello(int client_id);
[[nodiscard]] int decode_hello(std::span<const std::byte> payload);

struct RoundRequest {
  std::size_t round = 0;
  bool want_decoder = false;  // FedGuard asks for θ alongside ψ
  std::vector<float> global_parameters;
};
[[nodiscard]] std::vector<std::byte> encode_round_request(const RoundRequest& request);
[[nodiscard]] RoundRequest decode_round_request(std::span<const std::byte> payload);

[[nodiscard]] std::vector<std::byte> encode_client_update(const defenses::ClientUpdate& update);
[[nodiscard]] defenses::ClientUpdate decode_client_update(std::span<const std::byte> payload);

/// Exact on-wire frame size for an update (traffic accounting parity between
/// the simulator and the socket deployment).
[[nodiscard]] std::size_t client_update_frame_bytes(std::size_t psi_count,
                                                    std::size_t theta_count);

inline constexpr std::uint32_t kFrameMagic = 0x46474e4d;  // "FGNM"
inline constexpr std::size_t kFrameHeaderBytes = 16;      // magic + type + length

}  // namespace fedguard::net
