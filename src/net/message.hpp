#pragma once
// Wire protocol for the distributed deployment mode: the paper runs the
// server and 100 clients as separate processes over 10 Gb ethernet (§IV-E).
// Frames are length-prefixed and CRC-checked; payloads use the
// util::serialize primitives.
//
// Frame layout: u32 magic "FGNM" | u32 type | u64 payload bytes |
//               u32 crc32(payload) | payload.
//
// Round-trip per federated round:
//   server -> client : RoundRequest { round, server_lr-applied ψ0, want_theta }
//   client -> server : RoundReply   { round, ClientUpdate }
//   server -> client : Shutdown     (at the end of the run)
//
// The reply carries the round number it answers so the server can discard
// stale replies (a delayed client answering a round the server already gave
// up on) instead of mistaking them for the current round's update.
//
// Decoders never trust the peer: a malformed frame raises a typed
// DecodeError (bad magic, oversized length, CRC mismatch, truncation) so the
// server can count corrupt traffic separately from transport failures.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "defenses/aggregation.hpp"
#include "util/serialize.hpp"

namespace fedguard::net {

enum class MessageType : std::uint32_t {
  Hello = 1,         // client -> server: announce client id
  RoundRequest = 2,  // server -> client: global parameters for this round
  RoundReply = 3,    // client -> server: trained (possibly poisoned) update
  Shutdown = 4,      // server -> client: terminate
  // client -> aggregator (and any lower tier -> upper tier): trace-buffer
  // flush + metric deltas for the round just answered. Purely observational:
  // a lost or corrupt TelemetryReport never affects the federation (bad-CRC
  // frames keep the link, same DecodeError policy as replies).
  TelemetryReport = 5,
};

struct Message {
  MessageType type;
  std::vector<std::byte> payload;
};

/// Why a received frame failed to decode.
enum class DecodeErrorCode {
  BadMagic,   // frame does not start with kFrameMagic (desynced stream)
  BadType,    // type field outside the MessageType range
  Oversized,  // length field exceeds kMaxPayloadBytes (corrupt length)
  BadCrc,     // payload CRC32 does not match the header (bit corruption)
  Truncated,  // buffer/stream ended before the declared payload length
  BadShape,   // well-framed reply whose ψ/θ counts don't fit the round arena
  BadCodec,   // ψ codec tag outside the WireCodec range
};
[[nodiscard]] const char* to_string(DecodeErrorCode code) noexcept;

/// Typed decode failure: corrupt traffic, as opposed to transport errors
/// (SocketTimeout / ConnectionClosed in net/socket.hpp).
class DecodeError : public std::runtime_error {
 public:
  DecodeError(DecodeErrorCode code, const std::string& what)
      : std::runtime_error{what}, code_{code} {}
  [[nodiscard]] DecodeErrorCode code() const noexcept { return code_; }

 private:
  DecodeErrorCode code_;
};

/// CRC-32 (IEEE 802.3, reflected) of `data`.
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> data) noexcept;

struct FrameHeader {
  MessageType type = MessageType::Hello;
  std::size_t payload_bytes = 0;
  std::uint32_t payload_crc = 0;
};

/// Parse + validate the fixed-size frame header. Throws DecodeError on bad
/// magic, unknown type, or an oversized length; the CRC is checked later,
/// once the payload is available (verify_payload_crc / decode_frame).
[[nodiscard]] FrameHeader decode_frame_header(std::span<const std::byte> header);

/// Throws DecodeError{BadCrc} if `payload` does not hash to `header.payload_crc`.
void verify_payload_crc(const FrameHeader& header, std::span<const std::byte> payload);

/// Decode a complete framed buffer (header + payload) with full validation.
/// Throws DecodeError; never returns a partially-decoded message.
[[nodiscard]] Message decode_frame(std::span<const std::byte> buffer);

/// Serialize a message into a framed byte buffer.
[[nodiscard]] std::vector<std::byte> encode_frame(const Message& message);

/// Payload encoders / decoders. Decoders throw DecodeError{Truncated} on
/// short payloads.
[[nodiscard]] std::vector<std::byte> encode_hello(int client_id);
[[nodiscard]] int decode_hello(std::span<const std::byte> payload);

struct RoundRequest {
  std::size_t round = 0;
  bool want_decoder = false;  // FedGuard asks for θ alongside ψ
  // ψ-upload codec negotiation: the server states the encoding (and q8 chunk
  // size) it would like reply ψ spans in. A client that cannot (or will not)
  // quantize ignores the offer and answers fp32 — the reply self-tags its
  // codec, so mixed fleets interoperate without a capability handshake.
  util::WireCodec psi_codec = util::WireCodec::Fp32;
  std::size_t psi_chunk = util::kDefaultQ8ChunkSize;
  // Cross-process trace context (obs::TraceContext): the root derives
  // trace_id from (run seed, round) and every receiving process installs it
  // around its round work, so spans recorded on any host correlate under one
  // id. 0 = tracing off; purely observational either way.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  std::vector<float> global_parameters;
};
[[nodiscard]] std::vector<std::byte> encode_round_request(const RoundRequest& request);
[[nodiscard]] RoundRequest decode_round_request(std::span<const std::byte> payload);

/// A client's answer to one RoundRequest, tagged with the round it answers.
struct RoundReply {
  std::size_t round = 0;
  // Trace context echo: the trace_id of the RoundRequest this reply answers
  // (0 when the request carried none), so a reply is correlatable even when
  // it arrives after the server moved on to another round.
  std::uint64_t trace_id = 0;
  // Encoding of the ψ span in this reply (self-describing; normally echoes
  // the request's offer). θ always travels fp32 — it is FedGuard-only, tiny
  // relative to ψ, and feeds the defense's decoder reconstruction directly.
  util::WireCodec psi_codec = util::WireCodec::Fp32;
  std::size_t psi_chunk = util::kDefaultQ8ChunkSize;
  defenses::ClientUpdate update;
};
[[nodiscard]] std::vector<std::byte> encode_round_reply(const RoundReply& reply);
[[nodiscard]] RoundReply decode_round_reply(std::span<const std::byte> payload);

/// Zero-copy decode: ψ is deserialized straight into `row.psi` (whose size is
/// the expected dimension) and θ into `row.theta`, with the metadata fields
/// written through `row.meta`. Throws DecodeError{BadShape} if the reply's ψ
/// count differs from row.psi.size() or its θ count exceeds the row's θ
/// capacity — the frame was intact (CRC passed), the peer just sent the wrong
/// model shape, so the link itself stays trustworthy. Returns the round the
/// reply answers (the caller decides whether it is stale).
[[nodiscard]] std::size_t decode_round_reply_into(std::span<const std::byte> payload,
                                                  defenses::UpdateRow row);

/// One span event inside a TelemetryReport. Timestamps are relative to the
/// report's own epoch (the smallest ts in the report) because peer processes
/// do not share a steady_clock origin; the ingesting side rebases them into
/// its clock domain against the frame's arrival time.
struct TelemetrySpanEvent {
  std::string name;
  std::string category;
  std::uint64_t rel_ts_ns = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t round = 0;
  std::int32_t tid = 0;
  char phase = 'B';
};

/// Round-boundary telemetry shipped up the aggregation tree: the reporter's
/// trace-buffer flush plus its counter deltas since the previous report.
/// Observational-only by contract — receivers count and ingest it but never
/// let it influence round logic.
struct TelemetryFrame {
  std::uint32_t sender_pid = 0;  // Perfetto lane for the reporter's spans
  std::uint32_t sender_id = 0;   // client id (or shard id) of the reporter
  std::uint64_t round = 0;
  std::uint64_t trace_id = 0;
  std::vector<TelemetrySpanEvent> events;
  // (counter name, delta) pairs; the receiver re-registers them under an
  // origin label so reporters never collide with local instruments.
  std::vector<std::pair<std::string, std::uint64_t>> counter_deltas;
};
[[nodiscard]] std::vector<std::byte> encode_telemetry_report(const TelemetryFrame& report);
[[nodiscard]] TelemetryFrame decode_telemetry_report(std::span<const std::byte> payload);

/// Exact on-wire frame size for a RoundReply (traffic accounting parity
/// between the simulator and the socket deployment). The two-argument form
/// assumes the fp32 ψ codec.
[[nodiscard]] std::size_t client_update_frame_bytes(std::size_t psi_count,
                                                    std::size_t theta_count);
[[nodiscard]] std::size_t client_update_frame_bytes(std::size_t psi_count,
                                                    std::size_t theta_count,
                                                    util::WireCodec psi_codec,
                                                    std::size_t psi_chunk);

inline constexpr std::uint32_t kFrameMagic = 0x46474e4d;  // "FGNM"
inline constexpr std::size_t kFrameHeaderBytes = 20;  // magic + type + length + crc
// 1 GiB sanity bound: a corrupt length must not trigger a huge allocation.
inline constexpr std::size_t kMaxPayloadBytes = 1ULL << 30;

}  // namespace fedguard::net
