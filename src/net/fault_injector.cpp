#include "net/fault_injector.hpp"

namespace fedguard::net {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::None: return "none";
    case FaultKind::Drop: return "drop";
    case FaultKind::Delay: return "delay";
    case FaultKind::Truncate: return "truncate";
    case FaultKind::BitFlip: return "bit_flip";
    case FaultKind::Disconnect: return "disconnect";
    case FaultKind::NeverConnect: return "never_connect";
  }
  return "unknown";
}

bool FaultPlan::any() const noexcept {
  return drop_probability > 0.0 || delay_probability > 0.0 ||
         truncate_probability > 0.0 || bit_flip_probability > 0.0 ||
         disconnect_probability > 0.0 || never_connect_probability > 0.0;
}

FaultInjector::FaultInjector(FaultPlan plan) noexcept : plan_{plan} {}

util::Rng FaultInjector::stream(std::uint64_t tag, std::uint64_t a,
                                std::uint64_t b) const noexcept {
  // Hash (seed, tag, a, b) through splitmix64 so every (client, round) pair
  // gets an independent, scheduling-free stream.
  std::uint64_t state = plan_.seed ^ (tag * 0x9e3779b97f4a7c15ULL);
  state ^= util::splitmix64(state) + (a + 1) * 0xbf58476d1ce4e5b9ULL;
  state ^= util::splitmix64(state) + (b + 1) * 0x94d049bb133111ebULL;
  return util::Rng{util::splitmix64(state)};
}

bool FaultInjector::never_connects(int client_id) const noexcept {
  if (plan_.never_connect_probability <= 0.0) return false;
  util::Rng rng = stream(0x1cefULL, static_cast<std::uint64_t>(client_id), 0);
  return rng.uniform() < plan_.never_connect_probability;
}

FaultKind FaultInjector::decide(int client_id, std::size_t round) const noexcept {
  util::Rng rng = stream(0xfa17ULL, static_cast<std::uint64_t>(client_id), round);
  const double u = rng.uniform();
  double edge = plan_.drop_probability;
  if (u < edge) return FaultKind::Drop;
  edge += plan_.delay_probability;
  if (u < edge) return FaultKind::Delay;
  edge += plan_.truncate_probability;
  if (u < edge) return FaultKind::Truncate;
  edge += plan_.bit_flip_probability;
  if (u < edge) return FaultKind::BitFlip;
  edge += plan_.disconnect_probability;
  if (u < edge) return FaultKind::Disconnect;
  return FaultKind::None;
}

std::size_t FaultInjector::corrupt_bit(int client_id, std::size_t round,
                                       std::size_t payload_bits) const noexcept {
  if (payload_bits == 0) return 0;
  util::Rng rng = stream(0xb17ULL, static_cast<std::uint64_t>(client_id), round);
  return static_cast<std::size_t>(rng.uniform_int(payload_bits));
}

void FaultInjector::record(FaultKind kind) noexcept {
  counts_[static_cast<std::size_t>(kind)].fetch_add(1, std::memory_order_relaxed);
}

std::size_t FaultInjector::injected(FaultKind kind) const noexcept {
  return counts_[static_cast<std::size_t>(kind)].load(std::memory_order_relaxed);
}

std::size_t FaultInjector::total_injected() const noexcept {
  std::size_t total = 0;
  for (std::size_t k = 1; k < kFaultKindCount; ++k) {
    total += counts_[k].load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace fedguard::net
