#pragma once
// RAII wrappers over POSIX TCP sockets: the transport for the distributed
// federation. Length-framed, CRC-checked messages with optional per-call
// deadlines so a dead or slow peer surfaces as a typed error instead of
// hanging the caller forever.
//
// Error taxonomy (all derive from std::runtime_error):
//   SocketTimeout    — a deadline expired before the peer produced data
//   ConnectionClosed — the peer closed / reset the connection
//   DecodeError      — bytes arrived but the frame is corrupt (net/message.hpp)

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "net/message.hpp"

namespace fedguard::net {

/// A receive/accept deadline expired (SO_RCVTIMEO / poll).
class SocketTimeout : public std::runtime_error {
 public:
  explicit SocketTimeout(const std::string& what) : std::runtime_error{what} {}
};

/// The peer closed or reset the connection (EOF, ECONNRESET, EPIPE).
class ConnectionClosed : public std::runtime_error {
 public:
  explicit ConnectionClosed(const std::string& what) : std::runtime_error{what} {}
};

/// Outcome of a non-blocking partial read/write (reactor fast path). The
/// helpers retry EINTR internally, so the caller only ever sees these three.
enum class IoStatus {
  Ready,       // made progress (>= 1 byte moved)
  WouldBlock,  // the socket buffer is empty/full right now (EAGAIN)
  Closed,      // the peer closed or reset the connection
};

/// Connected byte stream. Movable, closes on destruction.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) noexcept : fd_{fd} {}
  ~TcpStream();
  TcpStream(TcpStream&& other) noexcept;
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connect to host:port (IPv4 dotted or "localhost").
  /// Throws std::runtime_error on failure.
  [[nodiscard]] static TcpStream connect(const std::string& host, std::uint16_t port);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Deadline for subsequent receives (SO_RCVTIMEO); zero restores blocking
  /// forever. Expiry raises SocketTimeout from recv_all / receive_message.
  void set_receive_timeout(std::chrono::milliseconds timeout);
  /// Deadline for subsequent sends (SO_SNDTIMEO); zero restores blocking.
  void set_send_timeout(std::chrono::milliseconds timeout);
  /// Block until the stream is readable or `timeout` elapses (poll).
  [[nodiscard]] bool wait_readable(std::chrono::milliseconds timeout) const;

  /// Switch the descriptor between blocking and O_NONBLOCK mode. Reactor
  /// connections run non-blocking; the request/reply helpers below
  /// (send_all/recv_all/receive_message) assume blocking mode.
  void set_nonblocking(bool enabled);

  /// Edge-triggered-safe partial read: one recv() into `data`, retrying
  /// EINTR. Ready sets `transferred` (>= 1); WouldBlock/Closed leave it 0.
  /// Callers drain in a loop until WouldBlock so an EPOLLET wakeup is never
  /// lost. Throws std::runtime_error only for unexpected errno values.
  [[nodiscard]] IoStatus read_some(std::span<std::byte> data, std::size_t& transferred);
  /// Edge-triggered-safe partial write (MSG_NOSIGNAL); same contract as
  /// read_some with EAGAIN reported as WouldBlock instead of a timeout.
  [[nodiscard]] IoStatus write_some(std::span<const std::byte> data,
                                    std::size_t& transferred);

  /// Full-buffer send; throws ConnectionClosed / SocketTimeout /
  /// std::runtime_error.
  void send_all(std::span<const std::byte> data);
  /// Full-buffer receive; throws ConnectionClosed / SocketTimeout /
  /// std::runtime_error.
  void recv_all(std::span<std::byte> data);

  /// Send one framed message.
  void send_message(const Message& message);
  /// Receive one framed message with full validation (magic, type, length
  /// bound, payload CRC). Throws DecodeError for corrupt frames — including
  /// a peer that closes mid-payload (DecodeErrorCode::Truncated) — and
  /// SocketTimeout / ConnectionClosed for transport failures.
  [[nodiscard]] Message receive_message();

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Listening socket. Binding port 0 selects an ephemeral port (see port()).
class TcpListener {
 public:
  /// `backlog` sizes the kernel pending-connection queue; shard listeners
  /// that expect hundreds of near-simultaneous joins pass more than the
  /// request/reply default.
  explicit TcpListener(std::uint16_t port, int backlog = 128);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  /// Block until a client connects (retries EINTR / ECONNABORTED).
  [[nodiscard]] TcpStream accept();
  /// Accept with a deadline: nullopt when `timeout` elapses with no pending
  /// connection (poll-based; never blocks past the deadline).
  [[nodiscard]] std::optional<TcpStream> accept_within(std::chrono::milliseconds timeout);
  /// Non-blocking mode for the listening descriptor itself (reactor use).
  void set_nonblocking(bool enabled);
  /// Reactor accept path: nullopt when no connection is pending (EAGAIN) or
  /// when the process is out of descriptors (EMFILE/ENFILE — logged and
  /// survivable: the pending peer stays queued and is retried on the next
  /// readiness event). Retries EINTR and already-aborted connections.
  [[nodiscard]] std::optional<TcpStream> accept_nonblocking();
  /// Stop listening: subsequent connection attempts are refused (late
  /// reconnecting clients fail fast instead of queueing forever).
  void close() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace fedguard::net
