#pragma once
// RAII wrappers over POSIX TCP sockets: the transport for the distributed
// federation. Length-framed, CRC-checked messages with optional per-call
// deadlines so a dead or slow peer surfaces as a typed error instead of
// hanging the caller forever.
//
// Error taxonomy (all derive from std::runtime_error):
//   SocketTimeout    — a deadline expired before the peer produced data
//   ConnectionClosed — the peer closed / reset the connection
//   DecodeError      — bytes arrived but the frame is corrupt (net/message.hpp)

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "net/message.hpp"

namespace fedguard::net {

/// A receive/accept deadline expired (SO_RCVTIMEO / poll).
class SocketTimeout : public std::runtime_error {
 public:
  explicit SocketTimeout(const std::string& what) : std::runtime_error{what} {}
};

/// The peer closed or reset the connection (EOF, ECONNRESET, EPIPE).
class ConnectionClosed : public std::runtime_error {
 public:
  explicit ConnectionClosed(const std::string& what) : std::runtime_error{what} {}
};

/// Connected byte stream. Movable, closes on destruction.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) noexcept : fd_{fd} {}
  ~TcpStream();
  TcpStream(TcpStream&& other) noexcept;
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connect to host:port (IPv4 dotted or "localhost").
  /// Throws std::runtime_error on failure.
  [[nodiscard]] static TcpStream connect(const std::string& host, std::uint16_t port);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Deadline for subsequent receives (SO_RCVTIMEO); zero restores blocking
  /// forever. Expiry raises SocketTimeout from recv_all / receive_message.
  void set_receive_timeout(std::chrono::milliseconds timeout);
  /// Deadline for subsequent sends (SO_SNDTIMEO); zero restores blocking.
  void set_send_timeout(std::chrono::milliseconds timeout);
  /// Block until the stream is readable or `timeout` elapses (poll).
  [[nodiscard]] bool wait_readable(std::chrono::milliseconds timeout) const;

  /// Full-buffer send; throws ConnectionClosed / SocketTimeout /
  /// std::runtime_error.
  void send_all(std::span<const std::byte> data);
  /// Full-buffer receive; throws ConnectionClosed / SocketTimeout /
  /// std::runtime_error.
  void recv_all(std::span<std::byte> data);

  /// Send one framed message.
  void send_message(const Message& message);
  /// Receive one framed message with full validation (magic, type, length
  /// bound, payload CRC). Throws DecodeError for corrupt frames — including
  /// a peer that closes mid-payload (DecodeErrorCode::Truncated) — and
  /// SocketTimeout / ConnectionClosed for transport failures.
  [[nodiscard]] Message receive_message();

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Listening socket. Binding port 0 selects an ephemeral port (see port()).
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// Block until a client connects.
  [[nodiscard]] TcpStream accept();
  /// Accept with a deadline: nullopt when `timeout` elapses with no pending
  /// connection (poll-based; never blocks past the deadline).
  [[nodiscard]] std::optional<TcpStream> accept_within(std::chrono::milliseconds timeout);
  /// Stop listening: subsequent connection attempts are refused (late
  /// reconnecting clients fail fast instead of queueing forever).
  void close() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace fedguard::net
