#pragma once
// RAII wrappers over POSIX TCP sockets: just enough transport for the
// distributed federation (blocking, length-framed messages, loopback-tested).

#include <cstdint>
#include <string>

#include "net/message.hpp"

namespace fedguard::net {

/// Connected byte stream. Movable, closes on destruction.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) noexcept : fd_{fd} {}
  ~TcpStream();
  TcpStream(TcpStream&& other) noexcept;
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connect to host:port (IPv4 dotted or "localhost").
  /// Throws std::runtime_error on failure.
  [[nodiscard]] static TcpStream connect(const std::string& host, std::uint16_t port);

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Blocking full-buffer send; throws std::runtime_error on error/EOF.
  void send_all(std::span<const std::byte> data);
  /// Blocking full-buffer receive; throws std::runtime_error on error/EOF.
  void recv_all(std::span<std::byte> data);

  /// Send one framed message.
  void send_message(const Message& message);
  /// Receive one framed message (validates magic). Throws on malformed frames.
  [[nodiscard]] Message receive_message();

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Listening socket. Binding port 0 selects an ephemeral port (see port()).
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// Block until a client connects.
  [[nodiscard]] TcpStream accept();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace fedguard::net
