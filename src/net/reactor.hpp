#pragma once
// Epoll-based non-blocking event loop: one thread holds thousands of framed
// TCP connections (the shard tier of the hierarchical topology, and the
// simulated-client harness in bench_reactor). Replaces the poll-everything
// collection loop of RemoteServer for shard-scale fan-in.
//
// Per connection the reactor runs a read state machine over the CRC-framed
// wire protocol (net/message.hpp): header bytes -> decode_frame_header ->
// payload bytes -> verify_payload_crc -> on_message. Reads are edge-triggered
// (EPOLLET) and drained until WouldBlock via TcpStream::read_some, so a
// readiness edge is never lost; writes go through per-connection queues whose
// EPOLLOUT interest is armed only while bytes are pending. The listening
// socket stays level-triggered: under descriptor exhaustion (EMFILE) a
// pending peer must be re-offered on the next cycle instead of silently
// dropped.
//
// Threading: the reactor is single-threaded by design — every method must be
// called from the thread that runs poll_once(), except wake(), which any
// thread may use (eventfd) to interrupt a blocked poll_once. Cross-thread
// work is handed over through the owner's own mailbox (see ShardAggregator).

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/message.hpp"
#include "net/socket.hpp"
#include "obs/http_exposition.hpp"

namespace fedguard::net {

class Reactor {
 public:
  using ConnectionId = std::uint64_t;

  struct Callbacks {
    /// A listener connection was accepted and registered.
    std::function<void(ConnectionId)> on_accept;
    /// A complete, CRC-verified frame arrived.
    std::function<void(ConnectionId, Message&&)> on_message;
    /// The connection is gone (peer close, fatal decode, close_connection,
    /// idle sweep). Fired exactly once per registered connection.
    std::function<void(ConnectionId)> on_close;
    /// A frame failed to decode. Return true to keep the connection (only
    /// honoured for BadCrc/BadShape, where the byte stream is still in
    /// sync); false — or no callback — drops it.
    std::function<bool(ConnectionId, const DecodeError&)> on_decode_error;
  };

  explicit Reactor(Callbacks callbacks);
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Accept new connections from `listener` during poll_once. The listener
  /// is borrowed (must outlive the reactor or be detached via stop_listening)
  /// and is switched to non-blocking mode.
  void listen(TcpListener& listener);
  /// Accept from an additional listener (e.g. a shard's dedicated scrape
  /// port). Connections behave identically to primary-listener ones: frames
  /// or HTTP, auto-detected per connection. Same borrowing contract.
  void listen_also(TcpListener& listener);
  /// Stop accepting (deregisters every listener; existing connections live
  /// on).
  void stop_listening();

  /// Enable live HTTP exposition on this reactor: a connection whose first
  /// bytes look like an HTTP GET/HEAD request (instead of an FGNM frame) is
  /// switched into a one-shot HTTP/1.0 exchange served from `responder`,
  /// written through the ordinary non-blocking write queue (partial-write
  /// safe, slow scrapers never stall federation traffic) and closed after
  /// the response drains. Without a responder such bytes stay what they
  /// always were: a BadMagic drop.
  void set_http_responder(obs::HttpResponder responder);

  /// Adopt an already-connected stream (client-side reuse: the bench drives
  /// thousands of outbound sockets through one reactor). The stream is
  /// switched to non-blocking mode. on_accept is NOT fired for adopted
  /// connections — the caller already knows the id.
  ConnectionId add_connection(TcpStream stream);

  /// Run one epoll cycle: wait up to `timeout` for events, dispatch
  /// callbacks inline, return the number of events handled. A wake() or any
  /// socket readiness returns early.
  std::size_t poll_once(std::chrono::milliseconds timeout);

  /// Queue one framed message for `id`; bytes drain as the socket accepts
  /// them. Returns false when the connection is unknown (already closed).
  bool send(ConnectionId id, const Message& message);

  /// Deregister + close a connection (fires on_close). Unknown ids are a
  /// no-op, so callers may close from inside callbacks without bookkeeping.
  void close_connection(ConnectionId id);

  [[nodiscard]] std::size_t connection_count() const noexcept {
    return connections_.size();
  }
  /// Bytes queued but not yet written, across all connections.
  [[nodiscard]] std::size_t pending_write_bytes() const noexcept;

  /// Close connections with no read/write activity for longer than
  /// `max_idle` (slow-client policy); returns how many were closed.
  std::size_t sweep_idle(std::chrono::milliseconds max_idle);

  /// Interrupt a blocked poll_once from another thread. Safe to call from
  /// any thread; all other methods are reactor-thread-only.
  void wake();

 private:
  struct Connection {
    TcpStream stream;
    // Http: the connection revealed itself as a scraper (GET/HEAD prefix
    // instead of frame magic) and is accumulating its request line.
    // HttpDrain: response queued; any further input is read and discarded
    // until the peer closes or the flushed response drops the connection.
    enum class ReadState { Header, Payload, Http, HttpDrain } read_state =
        ReadState::Header;
    std::vector<std::byte> read_buffer;
    std::size_t read_pos = 0;
    FrameHeader header{};
    std::deque<std::vector<std::byte>> write_queue;
    std::size_t write_offset = 0;  // bytes of write_queue.front() already sent
    bool write_armed = false;      // EPOLLOUT currently registered
    bool close_after_flush = false;  // drop once write_queue drains (HTTP)
    std::chrono::steady_clock::time_point last_activity;
  };

  ConnectionId register_connection(TcpStream stream);
  void accept_pending(TcpListener& listener);
  void handle_readable(ConnectionId id);
  void handle_writable(ConnectionId id);
  /// Advance the frame state machine once read_buffer is full. Returns false
  /// when the connection was dropped.
  bool advance_frame(ConnectionId id, Connection& connection);
  /// Complete-payload continuation: verify CRC, deliver, reset to Header.
  bool advance_frame_payload_done(ConnectionId id, Connection& connection);
  /// Try to parse + answer the buffered HTTP request. Returns false when the
  /// connection was dropped (bad request) or handed to HttpDrain.
  bool advance_http(ConnectionId id, Connection& connection);
  void flush_writes(ConnectionId id, Connection& connection);
  void arm_writes(Connection& connection, int fd, ConnectionId id, bool enabled);
  void drop(ConnectionId id);

  Callbacks callbacks_;
  obs::HttpResponder http_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd; the only cross-thread touchpoint
  TcpListener* listener_ = nullptr;
  std::vector<TcpListener*> extra_listeners_;
  ConnectionId next_id_ = kFirstConnectionId;
  std::unordered_map<ConnectionId, Connection> connections_;
  std::vector<ConnectionId> scratch_ids_;  // sweep/close iteration scratch

  static constexpr ConnectionId kListenerTag = 0;
  static constexpr ConnectionId kWakeTag = 1;
  static constexpr ConnectionId kFirstConnectionId = 2;
  // Extra listeners are tagged from the top of the id space, far above any
  // connection id, so kFirstConnectionId semantics never shift.
  static constexpr ConnectionId kExtraListenerBase = ~ConnectionId{0} - 64;
};

}  // namespace fedguard::net
