#pragma once
// Telemetry relay helpers: the producer/consumer sides of the
// MessageType::TelemetryReport frame. At each round boundary a client (or any
// lower tier) drains its trace buffers and counter deltas into a
// TelemetryFrame; the receiving aggregator rebases the events into its own
// clock domain and folds them into the active TraceSession plus the global
// Registry, which is how one root process ends up owning a merged,
// Perfetto-loadable timeline with a pid lane per federation process.
//
// Clock contract: peer processes do not share a steady_clock origin, so
// reports carry rel_ts_ns relative to the report's own earliest event, and
// ingestion anchors the window so that it ENDS at the frame's arrival time —
// an approximation (ignores network latency) that keeps remote spans a few
// microseconds early rather than in a wrong clock domain entirely.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/message.hpp"
#include "obs/trace.hpp"

namespace fedguard::net {

/// Producer side: drain `session` (take_events) and package everything into
/// one report. `counter_deltas` is typically obs::CounterDeltaTracker::take.
/// Only events stamped with `trace_id` context survive the session unchanged;
/// events recorded outside any round still relay (trace_id 0 in their args).
[[nodiscard]] TelemetryFrame build_telemetry_report(
    obs::TraceSession& session, std::uint32_t sender_pid,
    std::uint32_t sender_id, std::uint64_t round, std::uint64_t trace_id,
    std::vector<std::pair<std::string, std::uint64_t>> counter_deltas);

/// Rebase a report's relative timestamps into this process's now_ns() domain
/// so the relayed window ends at `arrival_ns`. Exposed separately from
/// ingest_telemetry_report for the correlation tests.
[[nodiscard]] std::vector<obs::TraceEventRecord> rebase_telemetry_events(
    const TelemetryFrame& report, std::uint64_t arrival_ns);

/// "name{origin=\"c<id>\"}" (splicing into an existing label block when the
/// reporter's counter already carries one): relayed counters must never
/// collide with the aggregator's local instruments.
[[nodiscard]] std::string with_origin_label(const std::string& name,
                                            std::uint32_t sender_id);

/// Consumer side: rebase + ingest the report's events into the active
/// TraceSession (no-op without one) and re-register its counter deltas under
/// an origin label. Returns the number of trace events ingested.
std::size_t ingest_telemetry_report(const TelemetryFrame& report,
                                    std::uint64_t arrival_ns);

}  // namespace fedguard::net
