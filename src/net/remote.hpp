#pragma once
// Distributed federation over TCP: the deployment shape of the paper's
// testbed (one server process, N client processes; §IV-E). The server
// accepts clients up to a deadline, then per round sends the global
// parameters to the sampled subset, collects their updates, aggregates with
// any AggregationStrategy, and evaluates — semantically identical to the
// in-process fl::Server, with traffic now crossing real sockets.
//
// Fault tolerance: the server never blocks forever on a dead or slow peer.
// The accept phase has a deadline (proceed with >= min_clients or fail
// loudly); each round collects replies under a poll-based deadline and
// aggregates over whichever sampled clients responded in time (mirroring the
// in-process straggler path in fl::Server::run_round); corrupt frames are
// caught by the CRC-checked protocol and counted, never decoded into garbage
// updates; clients that fail eject_after_failures consecutive rounds are
// ejected from the federation; disconnected clients may rejoin between
// rounds (the client loop reconnects with backoff). Every failure is
// recorded per round in RoundRecord (dropouts / timeouts / corrupt_frames /
// ejected_clients).
//
// The client side is a loop suitable for a standalone process (see
// examples/distributed_demo.cpp): connect (with retry/backoff), announce the
// client id, answer RoundRequests with locally trained updates until
// Shutdown, reconnecting if the link drops. An optional FaultInjector
// deterministically perturbs the reply path for chaos testing.

#include <cstdint>
#include <memory>

#include "data/dataset.hpp"
#include "defenses/aggregation.hpp"
#include "fl/client.hpp"
#include "fl/metrics.hpp"
#include "net/fault_injector.hpp"
#include "net/socket.hpp"
#include "net/telemetry_http.hpp"
#include "obs/metrics.hpp"
#include "util/serialize.hpp"

namespace fedguard::net {

struct RemoteServerConfig {
  std::uint16_t port = 0;              // 0 = ephemeral (read back via port())
  std::size_t expected_clients = 0;    // N: accept() up to the deadline
  std::size_t clients_per_round = 1;   // m
  std::size_t rounds = 1;              // R
  float server_learning_rate = 1.0f;
  std::size_t eval_batch_size = 256;
  std::uint64_t seed = 1;
  // ---- Fault-tolerance deadlines / policy -----------------------------------
  /// Accept-phase deadline: stop waiting for connections after this long.
  std::size_t accept_timeout_ms = 30000;
  /// Minimum connected clients to start the run; 0 means "all expected".
  /// Fewer than this after the accept deadline raises std::runtime_error
  /// (instead of the pre-deadline behavior of blocking forever).
  std::size_t min_clients = 0;
  /// Per-round reply-collection deadline; sampled clients that miss it are
  /// recorded as timeouts and the round aggregates without them.
  std::size_t round_timeout_ms = 30000;
  /// How long to wait at a round boundary for disconnected clients to rejoin.
  std::size_t readmit_timeout_ms = 2000;
  /// Eject a client after this many consecutive failed rounds (0 = never).
  std::size_t eject_after_failures = 3;
  // ---- ψ-upload wire codec --------------------------------------------------
  /// Encoding the server asks clients to use for reply ψ spans (q8 cuts the
  /// upload ~4×). Replies self-tag their codec, so a client that ignores the
  /// offer (RemoteClientOptions::force_fp32) still interoperates.
  util::WireCodec psi_codec = util::WireCodec::Fp32;
  /// Elements per q8 quantization chunk (ignored by other codecs).
  std::size_t psi_chunk = util::kDefaultQ8ChunkSize;
  // ---- Live exposition ------------------------------------------------------
  /// Port for the server's scrape endpoints (/metrics, /metrics.json,
  /// /healthz), served by a standalone TelemetryHttpServer thread; 0 = off.
  std::uint16_t http_port = 0;
};

/// Server endpoint of the distributed federation.
class RemoteServer {
 public:
  /// Binds immediately so clients can start connecting; `strategy` and
  /// `test_set` must outlive the server.
  RemoteServer(RemoteServerConfig config, defenses::AggregationStrategy& strategy,
               const data::Dataset& test_set, models::ClassifierArch arch,
               models::ImageGeometry geometry);

  /// The bound port (useful when config.port was 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }

  /// Accept clients (up to the deadline), run every round, send Shutdown,
  /// and return the run history. Blocking, but bounded: every socket wait
  /// has a deadline, so a dead peer can delay a run, never hang it.
  /// Throws std::runtime_error if fewer than the required minimum of
  /// clients connect within accept_timeout_ms.
  [[nodiscard]] fl::RunHistory run();

  /// The current global parameter vector (the final model after run()).
  [[nodiscard]] std::span<const float> global_parameters() const noexcept {
    return global_parameters_;
  }

 private:
  struct Session;

  void accept_clients(std::vector<Session>& sessions);
  void readmit_disconnected(std::vector<Session>& sessions);
  [[nodiscard]] fl::RoundRecord run_round(std::size_t round,
                                          std::vector<Session>& sessions);
  void evaluate_round(fl::RoundRecord& record);

  RemoteServerConfig config_;
  defenses::AggregationStrategy& strategy_;
  const data::Dataset& test_set_;
  models::ImageGeometry geometry_;
  TcpListener listener_;
  std::unique_ptr<TelemetryHttpServer> http_server_;  // config.http_port != 0
  std::unique_ptr<models::Classifier> eval_classifier_;
  std::vector<float> global_parameters_;
  util::Rng rng_;
  // Round-persistent scratch: replies deserialize straight into arena rows
  // (one slot per sampled client, in sample order); the aggregation sees a
  // row-index view over the slots that actually filled this round.
  defenses::UpdateMatrix arena_;
  defenses::AggregationResult result_;
  std::vector<bool> row_filled_;
  std::vector<std::size_t> row_indices_;
  // Registry instruments (docs/OBSERVABILITY.md §net_*). RoundRecord's
  // traffic and fault fields are per-round deltas of these counters — the
  // registry is the single source of truth for fault accounting.
  obs::Counter rounds_total_;
  obs::Counter upload_bytes_total_;
  obs::Counter download_bytes_total_;
  obs::Counter dropouts_total_;
  obs::Counter timeouts_total_;
  obs::Counter corrupt_frames_total_;
  obs::Counter ejected_clients_total_;
  obs::Histogram round_seconds_;
  obs::Gauge arena_capacity_bytes_;
};

/// Client-side retry/backoff policy and optional chaos injection.
struct RemoteClientOptions {
  /// Connection attempts during the initial join (covers a server that is
  /// still binding); backoff doubles per attempt starting at backoff_ms.
  std::size_t connect_attempts = 8;
  /// Reconnection attempts after a lost link mid-run; when exhausted the
  /// client gives up gracefully (returns the rounds served so far).
  std::size_t reconnect_attempts = 4;
  std::size_t backoff_ms = 25;
  /// Behave like a legacy fp32-only client: ignore the server's ψ codec
  /// offer and upload fp32 (exercises the negotiation fallback path).
  bool force_fp32 = false;
  /// Ship a TelemetryReport frame (trace-buffer flush + counter deltas) after
  /// each answered round. The client installs its own relay-only TraceSession
  /// unless one is already active in the process — in-process harnesses that
  /// share the server's session keep sole ownership of it.
  bool relay_telemetry = false;
  /// Deterministic chaos injection; not owned, may be null (no faults).
  FaultInjector* faults = nullptr;
};

/// Client endpoint: serves rounds from `client` until the server shuts the
/// session down, the link is lost beyond the retry budget, or (under a fault
/// plan) the injector decides this client never connects. Returns the number
/// of rounds fully served.
std::size_t run_remote_client(const std::string& host, std::uint16_t port,
                              fl::Client& client, const RemoteClientOptions& options);
std::size_t run_remote_client(const std::string& host, std::uint16_t port,
                              fl::Client& client);

}  // namespace fedguard::net
