#pragma once
// Distributed federation over TCP: the deployment shape of the paper's
// testbed (one server process, N client processes; §IV-E). The server
// accepts all clients, then per round sends the global parameters to the
// sampled subset, collects their updates, aggregates with any
// AggregationStrategy, and evaluates — semantically identical to the
// in-process fl::Server, with traffic now crossing real sockets.
//
// The client side is a loop suitable for a standalone process (see
// examples/distributed_demo.cpp): connect, announce the client id, answer
// RoundRequests with locally trained updates until Shutdown.

#include <cstdint>
#include <memory>

#include "data/dataset.hpp"
#include "defenses/aggregation.hpp"
#include "fl/client.hpp"
#include "fl/metrics.hpp"
#include "net/socket.hpp"

namespace fedguard::net {

struct RemoteServerConfig {
  std::uint16_t port = 0;              // 0 = ephemeral (read back via port())
  std::size_t expected_clients = 0;    // N: accept() until all are connected
  std::size_t clients_per_round = 1;   // m
  std::size_t rounds = 1;              // R
  float server_learning_rate = 1.0f;
  std::size_t eval_batch_size = 256;
  std::uint64_t seed = 1;
};

/// Server endpoint of the distributed federation.
class RemoteServer {
 public:
  /// Binds immediately so clients can start connecting; `strategy` and
  /// `test_set` must outlive the server.
  RemoteServer(RemoteServerConfig config, defenses::AggregationStrategy& strategy,
               const data::Dataset& test_set, models::ClassifierArch arch,
               models::ImageGeometry geometry);

  /// The bound port (useful when config.port was 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }

  /// Accept all expected clients, run every round, send Shutdown, and return
  /// the run history. Blocking; run client loops on other threads/processes.
  [[nodiscard]] fl::RunHistory run();

 private:
  RemoteServerConfig config_;
  defenses::AggregationStrategy& strategy_;
  const data::Dataset& test_set_;
  models::ImageGeometry geometry_;
  TcpListener listener_;
  std::unique_ptr<models::Classifier> eval_classifier_;
  std::vector<float> global_parameters_;
  util::Rng rng_;
};

/// Client endpoint: serves rounds from `client` until the server shuts the
/// session down. Returns the number of rounds served.
std::size_t run_remote_client(const std::string& host, std::uint16_t port,
                              fl::Client& client);

}  // namespace fedguard::net
