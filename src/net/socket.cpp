#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/serialize.hpp"

namespace fedguard::net {

namespace {
[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error{what + ": " + std::strerror(errno)};
}
}  // namespace

TcpStream::~TcpStream() { close(); }

TcpStream::TcpStream(TcpStream&& other) noexcept : fd_{other.fd_} { other.fd_ = -1; }

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpStream::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &address.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error{"TcpStream::connect: bad address " + host};
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    ::close(fd);
    throw_errno("connect");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream{fd};
}

void TcpStream::send_all(std::span<const std::byte> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void TcpStream::recv_all(std::span<std::byte> data) {
  std::size_t received = 0;
  while (received < data.size()) {
    const ssize_t n = ::recv(fd_, data.data() + received, data.size() - received, 0);
    if (n == 0) throw std::runtime_error{"recv: connection closed"};
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    received += static_cast<std::size_t>(n);
  }
}

void TcpStream::send_message(const Message& message) {
  send_all(encode_frame(message));
}

Message TcpStream::receive_message() {
  std::vector<std::byte> header(kFrameHeaderBytes);
  recv_all(header);
  util::ByteReader reader{header};
  if (reader.read_u32() != kFrameMagic) {
    throw std::runtime_error{"receive_message: bad frame magic"};
  }
  Message message;
  message.type = static_cast<MessageType>(reader.read_u32());
  const auto length = static_cast<std::size_t>(reader.read_u64());
  // 1 GiB sanity bound: a corrupt length must not trigger a huge allocation.
  if (length > (1ULL << 30)) {
    throw std::runtime_error{"receive_message: frame too large"};
  }
  message.payload.resize(length);
  if (length > 0) recv_all(message.payload);
  return message;
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    ::close(fd_);
    throw_errno("bind");
  }
  if (::listen(fd_, 128) != 0) {
    ::close(fd_);
    throw_errno("listen");
  }
  socklen_t length = sizeof(address);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&address), &length) != 0) {
    ::close(fd_);
    throw_errno("getsockname");
  }
  port_ = ntohs(address.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

TcpStream TcpListener::accept() {
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) throw_errno("accept");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream{fd};
}

}  // namespace fedguard::net
