#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/logging.hpp"
#include "util/serialize.hpp"

namespace fedguard::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error{what + ": " + std::strerror(errno)};
}

timeval to_timeval(std::chrono::milliseconds timeout) noexcept {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  return tv;
}

void set_fd_nonblocking(int fd, bool enabled, const char* what) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno(std::string{what} + ": fcntl(F_GETFL)");
  const int wanted = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (wanted != flags && ::fcntl(fd, F_SETFL, wanted) != 0) {
    throw_errno(std::string{what} + ": fcntl(F_SETFL)");
  }
}

}  // namespace

TcpStream::~TcpStream() { close(); }

TcpStream::TcpStream(TcpStream&& other) noexcept : fd_{other.fd_} { other.fd_ = -1; }

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpStream::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &address.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error{"TcpStream::connect: bad address " + host};
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    ::close(fd);
    throw_errno("connect");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream{fd};
}

void TcpStream::set_receive_timeout(std::chrono::milliseconds timeout) {
  const timeval tv = to_timeval(timeout);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    throw_errno("setsockopt(SO_RCVTIMEO)");
  }
}

void TcpStream::set_send_timeout(std::chrono::milliseconds timeout) {
  const timeval tv = to_timeval(timeout);
  if (::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    throw_errno("setsockopt(SO_SNDTIMEO)");
  }
}

bool TcpStream::wait_readable(std::chrono::milliseconds timeout) const {
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    const int n = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    return n > 0;
  }
}

void TcpStream::set_nonblocking(bool enabled) {
  set_fd_nonblocking(fd_, enabled, "TcpStream::set_nonblocking");
}

IoStatus TcpStream::read_some(std::span<std::byte> data, std::size_t& transferred) {
  transferred = 0;
  if (data.empty()) return IoStatus::Ready;
  for (;;) {
    const ssize_t n = ::recv(fd_, data.data(), data.size(), 0);
    if (n > 0) {
      transferred = static_cast<std::size_t>(n);
      return IoStatus::Ready;
    }
    if (n == 0) return IoStatus::Closed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::WouldBlock;
    if (errno == ECONNRESET) return IoStatus::Closed;
    throw_errno("read_some");
  }
}

IoStatus TcpStream::write_some(std::span<const std::byte> data, std::size_t& transferred) {
  transferred = 0;
  if (data.empty()) return IoStatus::Ready;
  for (;;) {
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n > 0) {
      transferred = static_cast<std::size_t>(n);
      return IoStatus::Ready;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return IoStatus::WouldBlock;
    if (n == 0 || errno == EPIPE || errno == ECONNRESET) return IoStatus::Closed;
    throw_errno("write_some");
  }
}

void TcpStream::send_all(std::span<const std::byte> data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        throw SocketTimeout{"send: deadline expired"};
      }
      if (n == 0 || errno == EPIPE || errno == ECONNRESET) {
        throw ConnectionClosed{"send: connection closed"};
      }
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void TcpStream::recv_all(std::span<std::byte> data) {
  std::size_t received = 0;
  while (received < data.size()) {
    const ssize_t n = ::recv(fd_, data.data() + received, data.size() - received, 0);
    if (n == 0) throw ConnectionClosed{"recv: connection closed"};
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw SocketTimeout{"recv: deadline expired"};
      }
      if (errno == ECONNRESET) throw ConnectionClosed{"recv: connection reset"};
      throw_errno("recv");
    }
    received += static_cast<std::size_t>(n);
  }
}

void TcpStream::send_message(const Message& message) {
  send_all(encode_frame(message));
}

Message TcpStream::receive_message() {
  std::vector<std::byte> header(kFrameHeaderBytes);
  recv_all(header);
  const FrameHeader parsed = decode_frame_header(header);
  Message message;
  message.type = parsed.type;
  message.payload.resize(parsed.payload_bytes);
  if (parsed.payload_bytes > 0) {
    try {
      recv_all(message.payload);
    } catch (const ConnectionClosed&) {
      // The header promised more bytes than the peer delivered: that is a
      // corrupt (truncated) frame, not a clean transport shutdown.
      throw DecodeError{DecodeErrorCode::Truncated,
                        "receive_message: peer closed mid-payload"};
    }
  }
  verify_payload_crc(parsed, message.payload);
  return message;
}

TcpListener::TcpListener(std::uint16_t port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    ::close(fd_);
    throw_errno("bind");
  }
  if (::listen(fd_, backlog) != 0) {
    ::close(fd_);
    throw_errno("listen");
  }
  socklen_t length = sizeof(address);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&address), &length) != 0) {
    ::close(fd_);
    throw_errno("getsockname");
  }
  port_ = ntohs(address.sin_port);
}

TcpListener::~TcpListener() { close(); }

void TcpListener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpStream TcpListener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      // A signal or a peer that aborted while queued is not a listener
      // failure; keep waiting for the next connection.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      throw_errno("accept");
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return TcpStream{fd};
  }
}

void TcpListener::set_nonblocking(bool enabled) {
  set_fd_nonblocking(fd_, enabled, "TcpListener::set_nonblocking");
}

std::optional<TcpStream> TcpListener::accept_nonblocking() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
      if (errno == EMFILE || errno == ENFILE) {
        // Descriptor exhaustion: survivable back-pressure, not a listener
        // fault. The pending peer stays in the kernel queue (level-triggered
        // registration retries it once fds free up).
        util::log_warn("accept: out of file descriptors (EMFILE/ENFILE)");
        return std::nullopt;
      }
      throw_errno("accept");
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return TcpStream{fd};
  }
}

std::optional<TcpStream> TcpListener::accept_within(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    const int wait = static_cast<int>(std::max<std::int64_t>(remaining.count(), 0));
    pollfd pfd{fd_, POLLIN, 0};
    const int n = ::poll(&pfd, 1, wait);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll(accept)");
    }
    if (n == 0) return std::nullopt;
    return accept();
  }
}

}  // namespace fedguard::net
