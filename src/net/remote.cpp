#include "net/remote.hpp"

#include <map>
#include <stdexcept>

#include "util/logging.hpp"
#include "util/timer.hpp"

namespace fedguard::net {

RemoteServer::RemoteServer(RemoteServerConfig config,
                           defenses::AggregationStrategy& strategy,
                           const data::Dataset& test_set, models::ClassifierArch arch,
                           models::ImageGeometry geometry)
    : config_{config},
      strategy_{strategy},
      test_set_{test_set},
      geometry_{geometry},
      listener_{config.port},
      eval_classifier_{std::make_unique<models::Classifier>(arch, geometry, config.seed)},
      rng_{config.seed} {
  if (config_.expected_clients == 0) {
    throw std::invalid_argument{"RemoteServer: expected_clients must be > 0"};
  }
  if (config_.clients_per_round == 0 ||
      config_.clients_per_round > config_.expected_clients) {
    throw std::invalid_argument{"RemoteServer: clients_per_round out of range"};
  }
  global_parameters_ = eval_classifier_->parameters_flat();
}

fl::RunHistory RemoteServer::run() {
  // Accept phase: clients announce their id via Hello.
  std::map<int, TcpStream> sessions;
  while (sessions.size() < config_.expected_clients) {
    TcpStream stream = listener_.accept();
    const Message hello = stream.receive_message();
    if (hello.type != MessageType::Hello) {
      throw std::runtime_error{"RemoteServer: expected Hello"};
    }
    const int client_id = decode_hello(hello.payload);
    if (!sessions.emplace(client_id, std::move(stream)).second) {
      throw std::runtime_error{"RemoteServer: duplicate client id " +
                               std::to_string(client_id)};
    }
  }
  std::vector<int> client_ids;
  client_ids.reserve(sessions.size());
  for (const auto& [id, stream] : sessions) client_ids.push_back(id);
  util::log_info("remote server: %zu clients connected on port %u", sessions.size(),
                 static_cast<unsigned>(port()));

  fl::RunHistory history;
  history.strategy = strategy_.name();
  const bool want_decoder = strategy_.wants_decoders();

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    const util::Stopwatch stopwatch;
    fl::RoundRecord record;
    record.round = round;

    const std::vector<std::size_t> sampled =
        rng_.sample_without_replacement(client_ids.size(), config_.clients_per_round);
    record.sampled_clients = sampled.size();

    // Broadcast the round request to the sampled clients...
    RoundRequest request;
    request.round = round;
    request.want_decoder = want_decoder;
    request.global_parameters = global_parameters_;
    const std::vector<std::byte> request_payload = encode_round_request(request);
    for (const std::size_t k : sampled) {
      TcpStream& stream = sessions.at(client_ids[k]);
      stream.send_message({MessageType::RoundRequest, request_payload});
      record.server_upload_bytes += kFrameHeaderBytes + request_payload.size();
    }
    // ...then collect their updates (clients compute concurrently; collection
    // order follows the sample order).
    std::vector<defenses::ClientUpdate> updates;
    updates.reserve(sampled.size());
    for (const std::size_t k : sampled) {
      TcpStream& stream = sessions.at(client_ids[k]);
      const Message reply = stream.receive_message();
      if (reply.type != MessageType::RoundReply) {
        throw std::runtime_error{"RemoteServer: expected RoundReply"};
      }
      record.server_download_bytes += kFrameHeaderBytes + reply.payload.size();
      updates.push_back(decode_client_update(reply.payload));
      if (updates.back().truly_malicious) ++record.sampled_malicious;
    }

    defenses::AggregationContext context;
    context.round = round;
    context.global_parameters = global_parameters_;
    const defenses::AggregationResult result = strategy_.aggregate(context, updates);
    if (result.parameters.size() != global_parameters_.size()) {
      throw std::runtime_error{"RemoteServer: wrong aggregate dimension"};
    }
    for (std::size_t i = 0; i < global_parameters_.size(); ++i) {
      global_parameters_[i] +=
          config_.server_learning_rate * (result.parameters[i] - global_parameters_[i]);
    }
    const defenses::DetectionStats detection =
        defenses::compute_detection_stats(updates, result);
    record.rejected_clients = result.rejected_clients.size();
    record.rejected_malicious = detection.true_positives;
    record.rejected_benign = detection.false_positives;

    // Evaluate on the held-out test set.
    eval_classifier_->load_parameters_flat(global_parameters_);
    std::size_t correct = 0;
    std::vector<std::size_t> indices;
    for (std::size_t start = 0; start < test_set_.size();
         start += config_.eval_batch_size) {
      const std::size_t n = std::min(config_.eval_batch_size, test_set_.size() - start);
      indices.resize(n);
      for (std::size_t i = 0; i < n; ++i) indices[i] = start + i;
      const data::Dataset::Batch batch = test_set_.gather(indices);
      correct += static_cast<std::size_t>(
          eval_classifier_->evaluate_accuracy(batch.images, batch.labels) *
              static_cast<double>(n) +
          0.5);
    }
    record.test_accuracy = test_set_.empty()
                               ? 0.0
                               : static_cast<double>(correct) /
                                     static_cast<double>(test_set_.size());
    record.round_seconds = stopwatch.seconds();
    util::log_info("remote round %zu: acc %.2f%%, %zu updates over TCP", round,
                   record.test_accuracy * 100.0, updates.size());
    history.rounds.push_back(record);
  }

  for (auto& [id, stream] : sessions) {
    stream.send_message({MessageType::Shutdown, {}});
  }
  return history;
}

std::size_t run_remote_client(const std::string& host, std::uint16_t port,
                              fl::Client& client) {
  TcpStream stream = TcpStream::connect(host, port);
  stream.send_message({MessageType::Hello, encode_hello(client.id())});

  std::size_t rounds_served = 0;
  for (;;) {
    const Message message = stream.receive_message();
    if (message.type == MessageType::Shutdown) break;
    if (message.type != MessageType::RoundRequest) {
      throw std::runtime_error{"run_remote_client: unexpected message"};
    }
    const RoundRequest request = decode_round_request(message.payload);
    defenses::ClientUpdate update =
        client.run_round(request.global_parameters, request.round);
    if (!request.want_decoder) update.theta.clear();  // don't ship unused θ
    stream.send_message({MessageType::RoundReply, encode_client_update(update)});
    ++rounds_served;
  }
  return rounds_served;
}

}  // namespace fedguard::net
