#include "net/remote.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "net/telemetry_relay.hpp"
#include "obs/exporter.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace fedguard::net {

namespace {

using Clock = std::chrono::steady_clock;
using std::chrono::milliseconds;

milliseconds remaining_until(Clock::time_point deadline) noexcept {
  const auto left =
      std::chrono::duration_cast<milliseconds>(deadline - Clock::now());
  return std::max(left, milliseconds{0});
}

}  // namespace

/// One accepted client: its link, liveness, and failure streak.
struct RemoteServer::Session {
  int client_id = -1;
  TcpStream stream;
  bool connected = false;
  bool ejected = false;
  std::size_t consecutive_failures = 0;
  // Request→reply round-trip latency, labelled per client; the handle is
  // resolved once at accept so the reply path does no registry lookup.
  obs::Histogram rtt;
};

RemoteServer::RemoteServer(RemoteServerConfig config,
                           defenses::AggregationStrategy& strategy,
                           const data::Dataset& test_set, models::ClassifierArch arch,
                           models::ImageGeometry geometry)
    : config_{config},
      strategy_{strategy},
      test_set_{test_set},
      geometry_{geometry},
      listener_{config.port},
      eval_classifier_{std::make_unique<models::Classifier>(arch, geometry, config.seed)},
      rng_{config.seed} {
  if (config_.expected_clients == 0) {
    throw std::invalid_argument{"RemoteServer: expected_clients must be > 0"};
  }
  if (config_.clients_per_round == 0 ||
      config_.clients_per_round > config_.expected_clients) {
    throw std::invalid_argument{"RemoteServer: clients_per_round out of range"};
  }
  if (config_.min_clients > config_.expected_clients) {
    throw std::invalid_argument{"RemoteServer: min_clients exceeds expected_clients"};
  }
  global_parameters_ = eval_classifier_->parameters_flat();
  auto& registry = obs::Registry::global();
  rounds_total_ = registry.counter("net_rounds_total");
  upload_bytes_total_ = registry.counter("net_upload_bytes_total");
  download_bytes_total_ = registry.counter("net_download_bytes_total");
  dropouts_total_ = registry.counter("net_dropouts_total");
  timeouts_total_ = registry.counter("net_timeouts_total");
  corrupt_frames_total_ = registry.counter("net_corrupt_frames_total");
  ejected_clients_total_ = registry.counter("net_ejected_clients_total");
  round_seconds_ = registry.histogram("net_round_seconds");
  arena_capacity_bytes_ = registry.gauge("obs_arena_capacity_bytes");
  if (config_.http_port != 0) {
    http_server_ = std::make_unique<TelemetryHttpServer>(
        config_.http_port, make_registry_responder("net_rounds_total", ""));
  }
}

void RemoteServer::accept_clients(std::vector<Session>& sessions) {
  const auto deadline = Clock::now() + milliseconds{
      static_cast<std::int64_t>(config_.accept_timeout_ms)};
  while (sessions.size() < config_.expected_clients) {
    const milliseconds left = remaining_until(deadline);
    if (left.count() == 0) break;
    std::optional<TcpStream> stream = listener_.accept_within(left);
    if (!stream) break;  // deadline expired with no pending connection
    try {
      stream->set_receive_timeout(std::min(left, milliseconds{5000}));
      const Message hello = stream->receive_message();
      if (hello.type != MessageType::Hello) {
        util::log_warn("remote server: rejecting connection (expected Hello)");
        continue;
      }
      const int client_id = decode_hello(hello.payload);
      const bool duplicate =
          std::any_of(sessions.begin(), sessions.end(),
                      [client_id](const Session& s) { return s.client_id == client_id; });
      if (duplicate) {
        throw std::runtime_error{"RemoteServer: duplicate client id " +
                                 std::to_string(client_id)};
      }
      Session session;
      session.client_id = client_id;
      session.stream = std::move(*stream);
      session.connected = true;
      session.rtt = obs::Registry::global().histogram(
          "net_client_rtt_seconds{client=\"" + std::to_string(client_id) + "\"}");
      sessions.push_back(std::move(session));
    } catch (const SocketTimeout&) {
      util::log_warn("remote server: rejecting connection (Hello deadline expired)");
    } catch (const DecodeError& e) {
      util::log_warn("remote server: rejecting connection (corrupt Hello: %s)", e.what());
    } catch (const ConnectionClosed&) {
      // The peer gave up mid-handshake; keep accepting others.
    }
  }
  const std::size_t required =
      config_.min_clients == 0 ? config_.expected_clients : config_.min_clients;
  if (sessions.size() < required) {
    throw std::runtime_error{
        "RemoteServer: only " + std::to_string(sessions.size()) + " of " +
        std::to_string(config_.expected_clients) + " clients connected within " +
        std::to_string(config_.accept_timeout_ms) + " ms (minimum " +
        std::to_string(required) + ")"};
  }
  // Deterministic session order regardless of connection timing.
  std::sort(sessions.begin(), sessions.end(),
            [](const Session& a, const Session& b) { return a.client_id < b.client_id; });
}

void RemoteServer::readmit_disconnected(std::vector<Session>& sessions) {
  auto lost = [&sessions] {
    return std::count_if(sessions.begin(), sessions.end(), [](const Session& s) {
      return !s.ejected && !s.connected;
    });
  };
  if (lost() == 0) return;
  const auto deadline = Clock::now() + milliseconds{
      static_cast<std::int64_t>(config_.readmit_timeout_ms)};
  while (lost() > 0) {
    const milliseconds left = remaining_until(deadline);
    if (left.count() == 0) break;
    std::optional<TcpStream> stream = listener_.accept_within(left);
    if (!stream) break;
    try {
      stream->set_receive_timeout(std::min(left, milliseconds{1000}));
      const Message hello = stream->receive_message();
      if (hello.type != MessageType::Hello) continue;
      const int client_id = decode_hello(hello.payload);
      const auto it = std::find_if(
          sessions.begin(), sessions.end(),
          [client_id](const Session& s) { return s.client_id == client_id; });
      if (it == sessions.end() || it->ejected || it->connected) {
        continue;  // unknown, ejected, or already-live id: refuse the rejoin
      }
      it->stream = std::move(*stream);
      it->connected = true;
      util::log_info("remote server: client %d rejoined", client_id);
    } catch (const std::exception&) {
      // Malformed or abandoned rejoin attempt; drop it and keep waiting.
    }
  }
}

void RemoteServer::evaluate_round(fl::RoundRecord& record) {
  eval_classifier_->load_parameters_flat(global_parameters_);
  std::size_t correct = 0;
  std::vector<std::size_t> indices;
  for (std::size_t start = 0; start < test_set_.size();
       start += config_.eval_batch_size) {
    const std::size_t n = std::min(config_.eval_batch_size, test_set_.size() - start);
    indices.resize(n);
    for (std::size_t i = 0; i < n; ++i) indices[i] = start + i;
    const data::Dataset::Batch batch = test_set_.gather(indices);
    correct += static_cast<std::size_t>(
        eval_classifier_->evaluate_accuracy(batch.images, batch.labels) *
            static_cast<double>(n) +
        0.5);
  }
  record.test_accuracy = test_set_.empty()
                             ? 0.0
                             : static_cast<double>(correct) /
                                   static_cast<double>(test_set_.size());
}

fl::RoundRecord RemoteServer::run_round(std::size_t round,
                                        std::vector<Session>& sessions) {
  const std::uint64_t round_start_ns = obs::now_ns();
  const std::uint64_t trace_id = obs::make_trace_id(config_.seed, round);
  obs::set_trace_context({trace_id, 0, round});
  FEDGUARD_TRACE_SPAN("round", "round:" + std::to_string(round));
  fl::RoundRecord record;
  record.round = round;
  // RoundRecord traffic/fault fields are deltas of the registry counters over
  // this round; only this (server) thread increments them.
  const std::uint64_t upload0 = upload_bytes_total_.value();
  const std::uint64_t download0 = download_bytes_total_.value();
  const std::uint64_t dropouts0 = dropouts_total_.value();
  const std::uint64_t timeouts0 = timeouts_total_.value();
  const std::uint64_t corrupt0 = corrupt_frames_total_.value();
  const std::uint64_t ejected0 = ejected_clients_total_.value();

  auto finalize = [&] {
    record.server_upload_bytes = upload_bytes_total_.value() - upload0;
    record.server_download_bytes = download_bytes_total_.value() - download0;
    record.dropouts = dropouts_total_.value() - dropouts0;
    record.timeouts = timeouts_total_.value() - timeouts0;
    record.corrupt_frames = corrupt_frames_total_.value() - corrupt0;
    record.ejected_clients = ejected_clients_total_.value() - ejected0;
    {
      FEDGUARD_TRACE_SPAN("round", "eval");
      evaluate_round(record);
    }
    const double seconds =
        static_cast<double>(obs::now_ns() - round_start_ns) * 1e-9;
    record.round_seconds = seconds;
    round_seconds_.observe(seconds);
    rounds_total_.add(1);
    obs::round_tick(round);
  };

  // Failed links get one readmission window per round boundary.
  readmit_disconnected(sessions);

  auto fail = [&](Session& session) {
    ++session.consecutive_failures;
    if (config_.eject_after_failures > 0 && !session.ejected &&
        session.consecutive_failures >= config_.eject_after_failures) {
      session.ejected = true;
      session.connected = false;
      session.stream.close();
      ejected_clients_total_.add(1);
      util::log_warn("remote server: ejecting client %d after %zu consecutive failures",
                     session.client_id, session.consecutive_failures);
    }
  };
  auto drop_link = [](Session& session) {
    session.connected = false;
    session.stream.close();
  };

  // Sample from the surviving (non-ejected) population; the universe keeps
  // the fl::Server index semantics so both paths draw identical samples from
  // the same seed while nobody has been ejected.
  std::vector<std::size_t> universe;
  universe.reserve(sessions.size());
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    if (!sessions[i].ejected) universe.push_back(i);
  }
  if (universe.empty()) {
    util::log_warn("remote server: round %zu has no surviving clients", round);
    finalize();
    return record;
  }
  std::vector<std::size_t> sampled;  // session indices, in sample order
  {
    FEDGUARD_TRACE_SPAN("round", "sample");
    const std::size_t per_round = std::min(config_.clients_per_round, universe.size());
    const std::vector<std::size_t> drawn =
        rng_.sample_without_replacement(universe.size(), per_round);
    sampled.reserve(drawn.size());
    for (const std::size_t k : drawn) sampled.push_back(universe[k]);
  }
  record.sampled_clients = sampled.size();

  // One arena slot per sampled client, in sample order; each reply
  // deserializes straight into its slot's row.
  arena_.reset(sampled.size(), global_parameters_.size(),
               strategy_.wants_decoders() ? strategy_.decoder_parameter_count() : 0);
  arena_capacity_bytes_.set(static_cast<std::int64_t>(arena_.capacity_bytes()));
  row_filled_.assign(sampled.size(), false);

  // Broadcast the round request to the sampled clients...
  RoundRequest request;
  request.round = round;
  request.want_decoder = strategy_.wants_decoders();
  request.psi_codec = config_.psi_codec;
  request.psi_chunk = config_.psi_chunk;
  request.trace_id = trace_id;
  request.global_parameters = global_parameters_;
  const std::vector<std::byte> request_payload = encode_round_request(request);
  struct Pending {
    std::size_t session_index;
    std::size_t slot;      // position in sample order
    std::uint64_t sent_ns; // request send time (per-client RTT)
  };
  std::vector<Pending> pending;
  pending.reserve(sampled.size());
  {
    FEDGUARD_TRACE_SPAN("round", "broadcast");
    for (std::size_t slot = 0; slot < sampled.size(); ++slot) {
      Session& session = sessions[sampled[slot]];
      if (!session.connected) {
        dropouts_total_.add(1);
        fail(session);
        continue;
      }
      try {
        FEDGUARD_TRACE_SPAN("net.frame", "send:" + std::to_string(session.client_id));
        session.stream.set_send_timeout(
            milliseconds{static_cast<std::int64_t>(config_.round_timeout_ms)});
        session.stream.send_message({MessageType::RoundRequest, request_payload});
        upload_bytes_total_.add(kFrameHeaderBytes + request_payload.size());
        pending.push_back({sampled[slot], slot, obs::now_ns()});
      } catch (const std::exception&) {
        dropouts_total_.add(1);
        drop_link(session);
        fail(session);
      }
    }
  }

  // ...then collect their updates under the round deadline, multiplexed over
  // all pending links so one dead client costs the deadline at most once per
  // round, not once per client.
  {
  FEDGUARD_TRACE_SPAN("round", "collect");
  const auto deadline = Clock::now() + milliseconds{
      static_cast<std::int64_t>(config_.round_timeout_ms)};
  while (!pending.empty()) {
    const milliseconds left = remaining_until(deadline);
    if (left.count() == 0) break;
    std::vector<pollfd> fds;
    fds.reserve(pending.size());
    for (const Pending& p : pending) {
      fds.push_back({sessions[p.session_index].stream.fd(), POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                             static_cast<int>(left.count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error{"RemoteServer: poll failed"};
    }
    if (ready == 0) break;  // round deadline expired
    std::vector<Pending> still_pending;
    still_pending.reserve(pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
      Session& session = sessions[pending[i].session_index];
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        still_pending.push_back(pending[i]);
        continue;
      }
      try {
        FEDGUARD_TRACE_SPAN("net.frame", "recv:" + std::to_string(session.client_id));
        session.stream.set_receive_timeout(std::max(remaining_until(deadline),
                                                    milliseconds{1}));
        const Message reply = session.stream.receive_message();
        if (reply.type == MessageType::TelemetryReport) {
          // Round-boundary telemetry from a relaying client: ingest it and
          // keep waiting for the actual reply on the same link.
          (void)ingest_telemetry_report(decode_telemetry_report(reply.payload),
                                        obs::now_ns());
          still_pending.push_back(pending[i]);
          continue;
        }
        if (reply.type != MessageType::RoundReply) {
          throw DecodeError{DecodeErrorCode::BadType,
                            "RemoteServer: expected RoundReply"};
        }
        const std::size_t slot = pending[i].slot;
        const std::size_t reply_round =
            decode_round_reply_into(reply.payload, arena_.row(slot));
        download_bytes_total_.add(kFrameHeaderBytes + reply.payload.size());
        if (reply_round != round) {
          // A delayed answer to an earlier round: real traffic, stale data.
          // The slot stays unfilled (its row holds the stale bytes until the
          // current round's reply overwrites them); keep listening for this
          // round's reply on the same link.
          still_pending.push_back(pending[i]);
          continue;
        }
        session.rtt.observe(static_cast<double>(obs::now_ns() - pending[i].sent_ns) *
                            1e-9);
        row_filled_[slot] = true;
        session.consecutive_failures = 0;
      } catch (const DecodeError& e) {
        corrupt_frames_total_.add(1);
        // An intact-but-CRC-bad or wrong-shape frame leaves the stream in
        // sync; anything else (truncation, bad magic, oversized length) means
        // the byte stream can no longer be trusted.
        if (e.code() != DecodeErrorCode::BadCrc &&
            e.code() != DecodeErrorCode::BadShape) {
          drop_link(session);
        }
        fail(session);
      } catch (const SocketTimeout&) {
        timeouts_total_.add(1);
        drop_link(session);  // mid-frame stall: the link is desynced
        fail(session);
      } catch (const std::exception&) {
        dropouts_total_.add(1);
        drop_link(session);
        fail(session);
      }
    }
    pending = std::move(still_pending);
  }
  for (const Pending& p : pending) {
    timeouts_total_.add(1);
    fail(sessions[p.session_index]);
  }
  }

  // Compact: the aggregation sees a row-index view over the slots that
  // filled, in sample order — no update data moves.
  row_indices_.clear();
  for (std::size_t slot = 0; slot < sampled.size(); ++slot) {
    if (row_filled_[slot]) row_indices_.push_back(slot);
  }
  for (const std::size_t slot : row_indices_) {
    if (arena_.meta(slot).truly_malicious) ++record.sampled_malicious;
  }

  if (!row_indices_.empty()) {
    FEDGUARD_TRACE_SPAN("round", "aggregate");
    const defenses::UpdateView updates{arena_, row_indices_};
    defenses::AggregationContext context;
    context.round = round;
    context.global_parameters = global_parameters_;
    strategy_.aggregate_into(context, updates, result_);
    if (result_.parameters.size() != global_parameters_.size()) {
      throw std::runtime_error{"RemoteServer: wrong aggregate dimension"};
    }
    for (std::size_t i = 0; i < global_parameters_.size(); ++i) {
      global_parameters_[i] += config_.server_learning_rate *
                               (result_.parameters[i] - global_parameters_[i]);
    }
    const defenses::DetectionStats detection =
        defenses::compute_detection_stats(updates, result_);
    record.rejected_clients = result_.rejected_clients.size();
    record.rejected_malicious = detection.true_positives;
    record.rejected_benign = detection.false_positives;
  } else {
    util::log_warn("remote server: round %zu collected no updates (model unchanged)",
                   round);
  }

  finalize();
  return record;
}

fl::RunHistory RemoteServer::run() {
  std::vector<Session> sessions;
  accept_clients(sessions);
  util::log_info("remote server: %zu/%zu clients connected on port %u", sessions.size(),
                 config_.expected_clients, static_cast<unsigned>(port()));

  fl::RunHistory history;
  history.strategy = strategy_.name();
  for (std::size_t round = 0; round < config_.rounds; ++round) {
    fl::RoundRecord record = run_round(round, sessions);
    util::log_info(
        "remote round %zu: acc %.2f%%, %zu/%zu responded (timeouts %zu, dropouts %zu, "
        "corrupt %zu)",
        round, record.test_accuracy * 100.0,
        record.sampled_clients - record.dropouts - record.timeouts -
            record.corrupt_frames,
        record.sampled_clients, record.timeouts, record.dropouts,
        record.corrupt_frames);
    history.rounds.push_back(std::move(record));
  }

  for (auto& session : sessions) {
    if (!session.connected) continue;
    try {
      session.stream.send_message({MessageType::Shutdown, {}});
    } catch (const std::exception&) {
      // A link that dies during shutdown is already accounted for.
    }
  }
  // Refuse late reconnection attempts so lingering clients fail fast instead
  // of queueing on a federation that has ended.
  listener_.close();
  return history;
}

namespace {

TcpStream connect_with_backoff(const std::string& host, std::uint16_t port,
                               std::size_t attempts, std::size_t backoff_ms) {
  std::size_t backoff = std::max<std::size_t>(backoff_ms, 1);
  for (std::size_t attempt = 1;; ++attempt) {
    try {
      return TcpStream::connect(host, port);
    } catch (const std::exception&) {
      if (attempt >= attempts) throw;
      std::this_thread::sleep_for(milliseconds{static_cast<std::int64_t>(backoff)});
      backoff = std::min<std::size_t>(backoff * 2, 2000);
    }
  }
}

}  // namespace

std::size_t run_remote_client(const std::string& host, std::uint16_t port,
                              fl::Client& client, const RemoteClientOptions& options) {
  FaultInjector* faults = options.faults;
  if (faults && faults->never_connects(client.id())) {
    faults->record(FaultKind::NeverConnect);
    return 0;
  }
  TcpStream stream =
      connect_with_backoff(host, port, options.connect_attempts, options.backoff_ms);
  stream.send_message({MessageType::Hello, encode_hello(client.id())});

  // Telemetry relay: own a relay-only (no file) TraceSession so round spans
  // can be drained into TelemetryReport frames — unless the process already
  // has a session (in-process harness sharing the server's), whose events we
  // must not steal.
  std::unique_ptr<obs::TraceSession> relay_session;
  obs::CounterDeltaTracker delta_tracker;
  if (options.relay_telemetry && !obs::TraceSession::active()) {
    relay_session = std::make_unique<obs::TraceSession>(std::string{});
    relay_session->set_pid(static_cast<int>(::getpid()));
  }
  auto send_telemetry = [&](std::uint64_t round, std::uint64_t trace_id) {
    if (!relay_session) return;
    const TelemetryFrame report = build_telemetry_report(
        *relay_session, static_cast<std::uint32_t>(::getpid()),
        static_cast<std::uint32_t>(client.id()), round, trace_id,
        delta_tracker.take(obs::Registry::global()));
    if (report.events.empty() && report.counter_deltas.empty()) return;
    try {
      stream.send_all(
          encode_frame({MessageType::TelemetryReport, encode_telemetry_report(report)}));
    } catch (const std::exception&) {
      // Best-effort by contract: a lost report never affects the federation;
      // a genuinely dead link surfaces at the next receive.
    }
  };

  std::size_t reconnects_left = options.reconnect_attempts;
  // Rejoin after a lost link: reconnect + re-Hello with doubling backoff.
  // Gives up (returns false) once the retry budget is spent — e.g. when the
  // federation has ended and the server refuses connections.
  auto rejoin = [&]() -> bool {
    std::size_t backoff = std::max<std::size_t>(options.backoff_ms, 1);
    while (reconnects_left > 0) {
      --reconnects_left;
      std::this_thread::sleep_for(milliseconds{static_cast<std::int64_t>(backoff)});
      backoff = std::min<std::size_t>(backoff * 2, 2000);
      try {
        stream = TcpStream::connect(host, port);
        stream.send_message({MessageType::Hello, encode_hello(client.id())});
        return true;
      } catch (const std::exception&) {
      }
    }
    return false;
  };

  std::size_t rounds_served = 0;
  for (;;) {
    Message message;
    try {
      message = stream.receive_message();
    } catch (const std::exception&) {
      if (!rejoin()) return rounds_served;
      continue;
    }
    if (message.type == MessageType::Shutdown) break;
    if (message.type != MessageType::RoundRequest) {
      throw std::runtime_error{"run_remote_client: unexpected message"};
    }
    const RoundRequest request = decode_round_request(message.payload);
    // Adopt the server's trace context for the round's work: every span below
    // (per-layer training included) gets stamped with the federation-wide id.
    obs::set_trace_context(
        {request.trace_id, request.parent_span, request.round});
    const FaultKind fault =
        faults ? faults->decide(client.id(), request.round) : FaultKind::None;
    if (fault == FaultKind::Drop) {
      // Crash-before-work: no training, no reply; the server's round
      // deadline expires. Matches the in-process straggler semantics (a
      // straggler never runs its round).
      faults->record(FaultKind::Drop);
      continue;
    }

    defenses::ClientUpdate update =
        client.run_round(request.global_parameters, request.round);
    if (!request.want_decoder) update.theta.clear();  // don't ship unused θ
    RoundReply reply;
    reply.round = request.round;
    reply.trace_id = request.trace_id;
    // Honor the server's ψ codec offer unless this client is configured as a
    // legacy fp32 uploader; a nonsense chunk offer falls back to the default
    // rather than failing the encode.
    reply.psi_codec = options.force_fp32 ? util::WireCodec::Fp32 : request.psi_codec;
    reply.psi_chunk =
        request.psi_chunk == 0 ? util::kDefaultQ8ChunkSize : request.psi_chunk;
    reply.update = std::move(update);
    const std::vector<std::byte> frame =
        encode_frame({MessageType::RoundReply, encode_round_reply(reply)});

    switch (fault) {
      case FaultKind::None:
        // Telemetry travels first so the aggregator can fold this round's
        // client spans while merging this round (reply order is irrelevant
        // to correctness — both frames share the link FIFO).
        send_telemetry(request.round, request.trace_id);
        stream.send_all(frame);
        ++rounds_served;
        break;
      case FaultKind::Delay:
        faults->record(FaultKind::Delay);
        std::this_thread::sleep_for(
            milliseconds{static_cast<std::int64_t>(faults->plan().delay_ms)});
        send_telemetry(request.round, request.trace_id);
        stream.send_all(frame);
        ++rounds_served;
        break;
      case FaultKind::BitFlip: {
        faults->record(FaultKind::BitFlip);
        std::vector<std::byte> corrupted = frame;
        const std::size_t payload_bits = (frame.size() - kFrameHeaderBytes) * 8;
        const std::size_t bit =
            faults->corrupt_bit(client.id(), request.round, payload_bits);
        corrupted[kFrameHeaderBytes + bit / 8] ^=
            std::byte{static_cast<unsigned char>(1u << (bit % 8))};
        stream.send_all(corrupted);
        break;
      }
      case FaultKind::Truncate: {
        faults->record(FaultKind::Truncate);
        const std::size_t keep =
            kFrameHeaderBytes + (frame.size() - kFrameHeaderBytes) / 2;
        stream.send_all(std::span<const std::byte>{frame.data(), keep});
        stream.close();
        if (!rejoin()) return rounds_served;
        break;
      }
      case FaultKind::Disconnect: {
        faults->record(FaultKind::Disconnect);
        stream.send_all(std::span<const std::byte>{frame.data(), kFrameHeaderBytes / 2});
        stream.close();
        if (!rejoin()) return rounds_served;
        break;
      }
      case FaultKind::NeverConnect:
      case FaultKind::Drop:
        break;  // handled above; unreachable
    }
  }
  return rounds_served;
}

std::size_t run_remote_client(const std::string& host, std::uint16_t port,
                              fl::Client& client) {
  return run_remote_client(host, port, client, RemoteClientOptions{});
}

}  // namespace fedguard::net
